#include "profile/profile_manager.hpp"
#include "profile/profiles.hpp"
#include "profile/serialize.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

namespace qosnp {
namespace {

TEST(Profiles, VideoProfileSatisfactionAndTolerance) {
  VideoProfile p;
  p.desired = VideoQoS{ColorDepth::kColor, 25, 640};
  p.worst = VideoQoS{ColorDepth::kGray, 10, 320};
  EXPECT_TRUE(p.satisfied_by(VideoQoS{ColorDepth::kSuperColor, 30, 1280}));
  EXPECT_FALSE(p.satisfied_by(VideoQoS{ColorDepth::kGray, 25, 640}));
  EXPECT_TRUE(p.tolerates(VideoQoS{ColorDepth::kGray, 10, 320}));
  EXPECT_FALSE(p.tolerates(VideoQoS{ColorDepth::kBlackWhite, 25, 640}));
  EXPECT_TRUE(p.well_formed());
}

TEST(Profiles, IllFormedWhenWorstExceedsDesired) {
  VideoProfile p;
  p.desired = VideoQoS{ColorDepth::kGray, 10, 320};
  p.worst = VideoQoS{ColorDepth::kColor, 25, 640};
  EXPECT_FALSE(p.well_formed());
}

TEST(Profiles, TextProfileAcceptableLanguages) {
  TextProfile p;
  p.desired = Language::kFrench;
  p.acceptable = {Language::kEnglish};
  EXPECT_TRUE(p.satisfied_by(TextQoS{Language::kFrench}));
  EXPECT_FALSE(p.satisfied_by(TextQoS{Language::kEnglish}));
  EXPECT_TRUE(p.tolerates(TextQoS{Language::kEnglish}));
  EXPECT_TRUE(p.tolerates(TextQoS{Language::kFrench}));
  EXPECT_FALSE(p.tolerates(TextQoS{Language::kGerman}));
}

TEST(Profiles, MMProfileWants) {
  MMProfile mm;
  EXPECT_FALSE(mm.wants(MediaKind::kVideo));
  mm.video = VideoProfile{};
  EXPECT_TRUE(mm.wants(MediaKind::kVideo));
  EXPECT_FALSE(mm.wants(MediaKind::kAudio));
}

TEST(Profiles, DefaultProfileValidates) {
  EXPECT_TRUE(validate(default_user_profile()).empty());
}

TEST(Profiles, ValidateCatchesProblems) {
  UserProfile p = default_user_profile();
  p.name = "";
  EXPECT_FALSE(validate(p).empty());

  p = default_user_profile();
  p.mm.video->worst = VideoQoS{ColorDepth::kSuperColor, 60, 1920};
  p.mm.video->desired = VideoQoS{ColorDepth::kGray, 10, 320};
  EXPECT_FALSE(validate(p).empty());

  p = default_user_profile();
  p.mm.video->desired.frame_rate_fps = 200;
  EXPECT_FALSE(validate(p).empty());

  p = default_user_profile();
  p.mm.cost.max_cost = Money::dollars(-1);
  EXPECT_FALSE(validate(p).empty());

  p = default_user_profile();
  p.mm.time.delivery_time_s = 0.0;
  EXPECT_FALSE(validate(p).empty());

  p = default_user_profile();
  p.mm.video.reset();
  p.mm.audio.reset();
  p.mm.text.reset();
  p.mm.image.reset();
  EXPECT_FALSE(validate(p).empty());
}

TEST(Serialize, RoundTripsDefaultProfile) {
  const UserProfile original = default_user_profile();
  const std::string text = to_text(original);
  auto parsed = parse_profiles(text);
  ASSERT_TRUE(parsed.ok()) << parsed.error();
  ASSERT_EQ(parsed.value().size(), 1u);
  const UserProfile& back = parsed.value()[0];
  EXPECT_EQ(back.name, original.name);
  ASSERT_TRUE(back.mm.video.has_value());
  EXPECT_EQ(back.mm.video->desired, original.mm.video->desired);
  EXPECT_EQ(back.mm.video->worst, original.mm.video->worst);
  ASSERT_TRUE(back.mm.audio.has_value());
  EXPECT_EQ(back.mm.audio->desired, original.mm.audio->desired);
  ASSERT_TRUE(back.mm.text.has_value());
  EXPECT_EQ(back.mm.text->desired, original.mm.text->desired);
  EXPECT_EQ(back.mm.text->acceptable, original.mm.text->acceptable);
  ASSERT_TRUE(back.mm.image.has_value());
  EXPECT_EQ(back.mm.image->desired, original.mm.image->desired);
  EXPECT_EQ(back.mm.cost.max_cost, original.mm.cost.max_cost);
  EXPECT_DOUBLE_EQ(back.mm.time.delivery_time_s, original.mm.time.delivery_time_s);
  EXPECT_DOUBLE_EQ(back.importance.cost_per_dollar, original.importance.cost_per_dollar);
  EXPECT_EQ(back.importance.video_color, original.importance.video_color);
  EXPECT_DOUBLE_EQ(back.importance.frame_rate.at(kTvFrameRate),
                   original.importance.frame_rate.at(kTvFrameRate));
}

TEST(Serialize, RoundTripsServerPreferences) {
  UserProfile p = default_user_profile();
  p.importance.preferred_servers = {"server-a", "edge-3"};
  p.importance.server_bonus = 2.5;
  auto parsed = parse_profiles(to_text(p));
  ASSERT_TRUE(parsed.ok()) << parsed.error();
  const ImportanceProfile& imp = parsed.value()[0].importance;
  EXPECT_EQ(imp.preferred_servers, p.importance.preferred_servers);
  EXPECT_DOUBLE_EQ(imp.server_bonus, 2.5);
  EXPECT_TRUE(imp.prefers_server("edge-3"));
  EXPECT_FALSE(imp.prefers_server("server-b"));
}

TEST(Serialize, ParsesMultipleProfiles) {
  const std::string text = to_text(default_user_profile()) + "\n" + [] {
    UserProfile p = default_user_profile();
    p.name = "second";
    return to_text(p);
  }();
  auto parsed = parse_profiles(text);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().size(), 2u);
  EXPECT_EQ(parsed.value()[1].name, "second");
}

TEST(Serialize, SkipsCommentsAndBlankLines) {
  auto parsed = parse_profiles("# a comment\n\nprofile = x\ncost.max = $2.00\n");
  ASSERT_TRUE(parsed.ok());
  ASSERT_EQ(parsed.value().size(), 1u);
  EXPECT_EQ(parsed.value()[0].mm.cost.max_cost, Money::dollars(2));
}

TEST(Serialize, ParsedProfileStartsWithNoMedia) {
  auto parsed = parse_profiles("profile = bare\ncost.max = $1.00\n");
  ASSERT_TRUE(parsed.ok());
  const MMProfile& mm = parsed.value()[0].mm;
  EXPECT_FALSE(mm.video || mm.audio || mm.text || mm.image);
}

TEST(Serialize, ErrorsCarryLineNumbers) {
  auto parsed = parse_profiles("profile = x\nvideo.desired = nonsense\n");
  ASSERT_FALSE(parsed.ok());
  EXPECT_NE(parsed.error().find("line 2"), std::string::npos);

  parsed = parse_profiles("cost.max = $1\n");
  ASSERT_FALSE(parsed.ok());
  EXPECT_NE(parsed.error().find("before any"), std::string::npos);

  parsed = parse_profiles("profile = x\nmystery.key = 1\n");
  ASSERT_FALSE(parsed.ok());
  EXPECT_NE(parsed.error().find("unknown key"), std::string::npos);
}

TEST(ProfileManager, StartsWithDefault) {
  ProfileManager manager;
  EXPECT_EQ(manager.default_profile().name, "default");
  EXPECT_EQ(manager.list().size(), 1u);
}

TEST(ProfileManager, SaveFindRemove) {
  ProfileManager manager;
  UserProfile p = default_user_profile();
  p.name = "evening-news";
  ASSERT_TRUE(manager.save(p).ok());
  ASSERT_TRUE(manager.find("evening-news").has_value());
  EXPECT_EQ(manager.list().size(), 2u);
  EXPECT_TRUE(manager.remove("evening-news"));
  EXPECT_FALSE(manager.find("evening-news").has_value());
}

TEST(ProfileManager, CannotRemoveDefault) {
  ProfileManager manager;
  EXPECT_FALSE(manager.remove("default"));
}

TEST(ProfileManager, RejectsInvalidProfile) {
  ProfileManager manager;
  UserProfile bad = default_user_profile();
  bad.name = "bad";
  bad.mm.cost.max_cost = Money::dollars(-5);
  EXPECT_FALSE(manager.save(bad).ok());
  EXPECT_FALSE(manager.find("bad").has_value());
}

TEST(ProfileManager, SetDefault) {
  ProfileManager manager;
  UserProfile p = default_user_profile();
  p.name = "preferred";
  manager.save(p);
  EXPECT_TRUE(manager.set_default("preferred"));
  EXPECT_EQ(manager.default_profile().name, "preferred");
  EXPECT_FALSE(manager.set_default("ghost"));
}

TEST(ProfileManager, FilePersistenceRoundTrip) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "qosnp_profiles_test.txt").string();
  {
    ProfileManager manager;
    UserProfile p = default_user_profile();
    p.name = "saved";
    p.mm.cost.max_cost = Money::cents(1234);
    manager.save(p);
    ASSERT_TRUE(manager.save_to_file(path).ok());
  }
  {
    ProfileManager manager;
    ASSERT_TRUE(manager.load_from_file(path).ok());
    auto p = manager.find("saved");
    ASSERT_TRUE(p.has_value());
    EXPECT_EQ(p->mm.cost.max_cost, Money::cents(1234));
  }
  std::remove(path.c_str());
}

TEST(ProfileManager, LoadMissingFileFails) {
  ProfileManager manager;
  EXPECT_FALSE(manager.load_from_file("/nonexistent/qosnp.txt").ok());
}

}  // namespace
}  // namespace qosnp
