// NegotiationPlanCache: the cross-request plan cache must be invisible in
// every result. The differential property suite runs twin systems — one
// manager cache-enabled, one cache-off — over 1000+ seeded (corpus, profile)
// cases including repeated requests (cache hits), document re-adds (epoch
// bumps) and a flapping-server fault plan, and asserts the two sides produce
// byte-identical NegotiationResults. Plus the cache's own unit surface:
// keying, LRU eviction, stale drops, stats conservation, CacheUse semantics,
// the shared config-validation path and the metrics mirror.
#include "core/plan_cache.hpp"

#include <gtest/gtest.h>

#include <iomanip>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/qos_manager.hpp"
#include "document/corpus.hpp"
#include "fault/fault_injector.hpp"
#include "result_signature.hpp"
#include "service/negotiation_service.hpp"
#include "test_system.hpp"
#include "util/rng.hpp"

namespace qosnp {
namespace {

using testing::TestSystem;
using testing::result_signature;

/// Same randomised profile space as the offer-stream differential suite.
UserProfile random_profile(Rng& rng) {
  UserProfile p = TestSystem::tolerant_profile();
  static const VideoQoS video_points[] = {
      VideoQoS{ColorDepth::kBlackWhite, 10, 320}, VideoQoS{ColorDepth::kGray, 15, 320},
      VideoQoS{ColorDepth::kColor, 25, 640}, VideoQoS{ColorDepth::kSuperColor, 30, 1280}};
  p.mm.video->desired = video_points[1 + rng.below(3)];
  p.mm.video->worst = video_points[rng.below(4)];
  if (rng.chance(0.3)) {
    p.mm.audio.reset();
  } else {
    p.mm.audio->desired = AudioQoS{rng.chance(0.5) ? AudioQuality::kCD : AudioQuality::kRadio};
    p.mm.audio->worst = AudioQoS{rng.chance(0.8) ? AudioQuality::kTelephone : AudioQuality::kRadio};
  }
  if (rng.chance(0.3)) {
    p.mm.text.reset();
  } else if (rng.chance(0.3)) {
    p.mm.text->acceptable.clear();
  }
  p.mm.cost.max_cost = Money::cents(50 + 25 * static_cast<std::int64_t>(rng.below(160)));
  if (rng.chance(0.3)) p.importance.cost_per_dollar = rng.uniform(0.1, 2.0);
  if (rng.chance(0.25)) {
    p.importance.preferred_servers = {"server-b"};
    p.importance.server_bonus = rng.uniform(0.1, 1.0);
  }
  return p;
}

NegotiationConfig cached_config(EnumerationStrategy strategy,
                                std::shared_ptr<NegotiationPlanCache> cache) {
  NegotiationConfig config;
  config.enumeration.strategy = strategy;
  config.plan_cache = std::move(cache);
  return config;
}

// --- The tentpole guarantee: cached == uncached, everywhere. ---------------

TEST(PlanCacheDifferential, CachedResultsMatchUncachedAcrossSeededCorpora) {
  std::size_t compared = 0;
  std::uint64_t total_hits = 0;
  for (std::uint64_t seed = 1; seed <= 50; ++seed) {
    TestSystem cached_sys;
    TestSystem plain_sys;
    CorpusConfig corpus;
    corpus.seed = seed;
    corpus.num_documents = 3;
    corpus.servers = {"server-a", "server-b"};
    for (auto& doc : generate_corpus(corpus)) {
      cached_sys.catalog.add(MultimediaDocument{doc});
      plain_sys.catalog.add(std::move(doc));
    }
    const EnumerationStrategy strategy =
        seed % 2 == 0 ? EnumerationStrategy::kEager : EnumerationStrategy::kBestFirst;
    auto cache = std::make_shared<NegotiationPlanCache>();
    QoSManager cached(cached_sys.catalog, cached_sys.farm, *cached_sys.transport, CostModel{},
                      cached_config(strategy, cache));
    QoSManager plain(plain_sys.catalog, plain_sys.farm, *plain_sys.transport, CostModel{},
                     cached_config(strategy, nullptr));
    Rng rng(seed * 2654435761ULL);
    // Keep every result (and so its commitment) alive for the whole seed:
    // farm and transport state then evolve identically on both sides.
    std::vector<NegotiationResult> keep_cached, keep_plain;
    for (const DocumentId& id : cached_sys.catalog.list()) {
      // The same (document, profile) pair is negotiated repeatedly: the
      // first request builds and stores the plan, later ones replay it while
      // Step 5 sees progressively fuller servers.
      const UserProfile repeat_profile = random_profile(rng);
      for (int rep = 0; rep < 7; ++rep) {
        const UserProfile profile = rep % 2 == 0 ? repeat_profile : random_profile(rng);
        if (rep == 5) {
          // Epoch bump mid-sequence: both catalogs re-add the document, the
          // cached side must drop its now-stale plan, and parity must hold.
          auto doc = cached_sys.catalog.find(id);
          cached_sys.catalog.add(MultimediaDocument{*doc});
          plain_sys.catalog.add(MultimediaDocument{*doc});
        }
        NegotiationResult a =
            cached.negotiate(make_negotiation_request(cached_sys.client, id, profile));
        NegotiationResult b =
            plain.negotiate(make_negotiation_request(plain_sys.client, id, profile));
        EXPECT_EQ(result_signature(a), result_signature(b))
            << "seed " << seed << " doc " << id << " rep " << rep;
        ++compared;
        keep_cached.push_back(std::move(a));
        keep_plain.push_back(std::move(b));
      }
    }
    const PlanCacheStats stats = cache->stats();
    EXPECT_EQ(stats.lookups, stats.hits + stats.misses) << "seed " << seed;
    EXPECT_LE(stats.stale, stats.misses) << "seed " << seed;
    total_hits += stats.hits;
  }
  EXPECT_GE(compared, 1000u);
  EXPECT_GT(total_hits, 0u);  // the suite exercised real replays, not just misses
}

TEST(PlanCacheDifferential, ParityHoldsUnderFlappingServers) {
  std::size_t compared = 0;
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    TestSystem cached_sys;
    TestSystem plain_sys;
    FaultPlan plan;
    plan.seed = seed;
    plan.server_defaults.transient_failure_p = 0.35;  // flapping servers
    plan.per_server["server-b"] = FaultSpec{};
    plan.per_server["server-b"].outage_after_events = 10;
    plan.per_server["server-b"].outage_length_events = 20;
    FaultyServerFarm cached_farm(cached_sys.farm, plan);
    FaultyServerFarm plain_farm(plain_sys.farm, plan);

    auto cache = std::make_shared<NegotiationPlanCache>();
    QoSManager cached(cached_sys.catalog, cached_farm, *cached_sys.transport, CostModel{},
                      cached_config(EnumerationStrategy::kBestFirst, cache));
    QoSManager plain(plain_sys.catalog, plain_farm, *plain_sys.transport, CostModel{},
                     cached_config(EnumerationStrategy::kBestFirst, nullptr));
    Rng rng(seed);
    std::vector<NegotiationResult> keep_cached, keep_plain;
    const UserProfile repeat_profile = random_profile(rng);
    for (int rep = 0; rep < 12; ++rep) {
      const UserProfile profile = rep % 3 == 0 ? repeat_profile : random_profile(rng);
      NegotiationResult a =
          cached.negotiate(make_negotiation_request(cached_sys.client, "article", profile));
      NegotiationResult b =
          plain.negotiate(make_negotiation_request(plain_sys.client, "article", profile));
      EXPECT_EQ(result_signature(a), result_signature(b)) << "seed " << seed << " rep " << rep;
      ++compared;
      keep_cached.push_back(std::move(a));
      keep_plain.push_back(std::move(b));
    }
    // Identical request sequences must have drawn identical injected faults:
    // the cached side's Step 5 is the same walk, not a shortcut around it.
    EXPECT_EQ(cached_farm.stats().injected_refusals, plain_farm.stats().injected_refusals);
    EXPECT_EQ(cached_farm.stats().outage_refusals, plain_farm.stats().outage_refusals);
    EXPECT_GT(cache->stats().hits, 0u);
  }
  EXPECT_GE(compared, 96u);
}

// --- Cache-unit surface. ---------------------------------------------------

TEST(PlanCache, HitsReplayStaleDropsAndConservation) {
  TestSystem sys;
  auto cache = std::make_shared<NegotiationPlanCache>();
  QoSManager manager(sys.catalog, sys.farm, *sys.transport, CostModel{},
                     cached_config(EnumerationStrategy::kBestFirst, cache));
  const UserProfile profile = TestSystem::tolerant_profile();

  std::vector<NegotiationResult> keep;
  keep.push_back(manager.negotiate(make_negotiation_request(sys.client, "article", profile)));
  keep.push_back(manager.negotiate(make_negotiation_request(sys.client, "article", profile)));
  PlanCacheStats stats = cache->stats();
  EXPECT_EQ(stats.lookups, 2u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.stores, 1u);
  EXPECT_EQ(cache->size(), 1u);

  // Re-adding the document moves the epoch: the cached plan is stale.
  sys.catalog.add(TestSystem::news_article());
  keep.push_back(manager.negotiate(make_negotiation_request(sys.client, "article", profile)));
  stats = cache->stats();
  EXPECT_EQ(stats.lookups, 3u);
  EXPECT_EQ(stats.stale, 1u);
  EXPECT_EQ(stats.misses, 2u);
  EXPECT_EQ(stats.lookups, stats.hits + stats.misses);
  for (NegotiationResult& r : keep) {
    EXPECT_EQ(r.verdict, NegotiationStatus::kSucceeded);
  }
}

TEST(PlanCache, BypassSkipsAndRefreshOverwrites) {
  TestSystem sys;
  auto cache = std::make_shared<NegotiationPlanCache>();
  QoSManager manager(sys.catalog, sys.farm, *sys.transport, CostModel{},
                     cached_config(EnumerationStrategy::kBestFirst, cache));
  const UserProfile profile = TestSystem::tolerant_profile();

  NegotiationRequest bypass = make_negotiation_request(sys.client, "article", profile);
  bypass.cache = CacheUse::kBypass;
  std::vector<NegotiationResult> keep;
  keep.push_back(manager.negotiate(bypass));
  EXPECT_EQ(cache->stats().lookups, 0u);
  EXPECT_EQ(cache->size(), 0u);

  keep.push_back(manager.negotiate(make_negotiation_request(sys.client, "article", profile)));
  EXPECT_EQ(cache->stats().stores, 1u);

  NegotiationRequest refresh = make_negotiation_request(sys.client, "article", profile);
  refresh.cache = CacheUse::kRefresh;
  keep.push_back(manager.negotiate(refresh));
  const PlanCacheStats stats = cache->stats();
  EXPECT_EQ(stats.lookups, 1u);  // refresh performs no lookup
  EXPECT_EQ(stats.stores, 2u);   // but recomputes and overwrites
  EXPECT_EQ(cache->size(), 1u);
}

TEST(PlanCache, LruEvictsLeastRecentlyUsedWithinCapacity) {
  NegotiationPlanCache cache(CachePolicy{/*shards=*/1, /*capacity=*/2});
  auto plan = std::make_shared<NegotiationPlan>();
  cache.store("a", plan);
  cache.store("b", plan);
  EXPECT_NE(cache.lookup("a", 0), nullptr);  // "a" is now most recent
  cache.store("c", plan);                    // evicts "b"
  EXPECT_EQ(cache.lookup("b", 0), nullptr);
  EXPECT_NE(cache.lookup("a", 0), nullptr);
  EXPECT_NE(cache.lookup("c", 0), nullptr);
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.stats().evictions, 1u);
  cache.clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.stats().evictions, 1u);  // counters survive clear()
}

TEST(PlanCache, KeyCoversInputsButNotProfileName) {
  const auto doc = std::make_shared<const MultimediaDocument>(TestSystem::news_article());
  TestSystem sys;
  const std::string digest =
      plan_config_digest(EnumerationConfig{}, ClassificationPolicy{}, 512, CostModel{});

  UserProfile profile = TestSystem::tolerant_profile();
  const std::string base = plan_cache_key(*doc, sys.client, profile, digest);

  UserProfile renamed = profile;
  renamed.name = "completely-different-name";
  EXPECT_EQ(plan_cache_key(*doc, sys.client, renamed, digest), base);

  UserProfile cheaper = profile;
  cheaper.mm.cost.max_cost = Money::cents(1);
  EXPECT_NE(plan_cache_key(*doc, sys.client, cheaper, digest), base);

  ClientMachine smaller = sys.client;
  smaller.screen = ScreenSpec{640, 480, ColorDepth::kGray};
  EXPECT_NE(plan_cache_key(*doc, smaller, profile, digest), base);

  MultimediaDocument trimmed = *doc;
  trimmed.monomedia.pop_back();
  EXPECT_NE(plan_cache_key(trimmed, sys.client, profile, digest), base);

  const std::string other_digest =
      plan_config_digest(EnumerationConfig{}, ClassificationPolicy{}, 0, CostModel{});
  EXPECT_NE(plan_cache_key(*doc, sys.client, profile, other_digest), base);
}

TEST(PlanCache, ValidationSharesOnePathWithServiceConfig) {
  EXPECT_THROW((void)CachePolicy::validated(CachePolicy{0, 16}), std::invalid_argument);
  EXPECT_THROW((void)CachePolicy::validated(CachePolicy{4, 0}), std::invalid_argument);
  EXPECT_THROW((void)NegotiationPlanCache(CachePolicy{0, 0}), std::invalid_argument);
  const CachePolicy ok = CachePolicy::validated(CachePolicy{4, 64});
  EXPECT_EQ(ok.shards, 4u);
  EXPECT_EQ(ok.capacity, 64u);

  ServiceConfig bad_workers;
  bad_workers.workers = 0;
  EXPECT_THROW((void)ServiceConfig::validated(bad_workers), std::invalid_argument);
  ServiceConfig bad_deadline;
  bad_deadline.deadline_ms = -1.0;
  try {
    (void)ServiceConfig::validated(bad_deadline);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_STREQ(e.what(), "ServiceConfig: deadline_ms must not be negative");
  }
}

TEST(PlanCache, BindMetricsMirrorsCountersIntoRegistry) {
  TestSystem sys;
  auto cache = std::make_shared<NegotiationPlanCache>();
  QoSManager manager(sys.catalog, sys.farm, *sys.transport, CostModel{},
                     cached_config(EnumerationStrategy::kBestFirst, cache));
  const UserProfile profile = TestSystem::tolerant_profile();

  // Pre-bind traffic must be carried over at bind time (catch-up add).
  std::vector<NegotiationResult> keep;
  keep.push_back(manager.negotiate(make_negotiation_request(sys.client, "article", profile)));

  MetricsRegistry registry;
  cache->bind_metrics(registry);
  EXPECT_EQ(registry.counter_value("qosnp_plan_cache_misses"), 1u);
  keep.push_back(manager.negotiate(make_negotiation_request(sys.client, "article", profile)));
  EXPECT_EQ(registry.counter_value("qosnp_plan_cache_hits"), 1u);
  cache->bind_metrics(registry);  // re-bind of the same registry: no double count
  EXPECT_EQ(registry.counter_value("qosnp_plan_cache_hits"), 1u);
  EXPECT_EQ(registry.counter_value("qosnp_plan_cache_misses"), cache->stats().misses);
  EXPECT_EQ(registry.counter_value("qosnp_plan_cache_stale"), cache->stats().stale);
  EXPECT_EQ(registry.counter_value("qosnp_plan_cache_evictions"), cache->stats().evictions);
}

}  // namespace
}  // namespace qosnp
