// Concurrency suite for the policy layer (tsan-runnable, label
// "concurrency"): concurrent admits, preemptions and upgrade scans through
// the NegotiationService — and through a bare PolicyEngine hammered from
// many threads — must never double-release a victim, and the transport's
// link accounting must be exactly consistent once everything drains.
#include "policy/preemption.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <thread>
#include <vector>

#include "service/negotiation_service.hpp"
#include "session/session.hpp"
#include "test_service.hpp"

namespace qosnp {
namespace {

using testing::ServiceSystem;
using testing::TestSystem;

NegotiationRequest class_request(const ClientMachine& client, SessionClass cls,
                                 std::uint64_t id) {
  NegotiationRequest request =
      make_negotiation_request(client, "article", TestSystem::tolerant_profile());
  request.id = id;
  request.session_class = cls;
  request.accept_degraded = true;
  return request;
}

SessionClass class_for(std::uint64_t n) {
  switch (n % 3) {
    case 0: return SessionClass::kBestEffort;
    case 1: return SessionClass::kStandard;
    default: return SessionClass::kPremium;
  }
}

/// Every victim the policy released must be released exactly once: a session
/// id may appear at most once with action kReleased, and a released victim
/// must never show up as degraded afterwards (it is gone).
void assert_no_double_release(const std::vector<VictimEvent>& events) {
  std::map<SessionId, int> released;
  for (const VictimEvent& e : events) {
    if (e.action == VictimAction::kReleased) released[e.session] += 1;
  }
  for (const auto& [session, count] : released) {
    EXPECT_EQ(count, 1) << "session " << session << " released " << count << " times";
  }
}

// ---------------------------------------------------------------------------
// The full service stack: worker pool + background upgrade scanner + mixed
// classes over a congested farm. Auto-confirm puts admitted sessions into
// kPlaying immediately, so workers preempt each other's sessions while the
// scanner promotes them back — the exact interleaving tsan needs to see.
TEST(PolicyConcurrency, ServiceWorkersAndUpgradeScannerNeverDoubleRelease) {
  ServiceSystem sys(8, /*access_bps=*/1'000'000'000, /*backbone_bps=*/10'000'000'000,
                    /*server_bps=*/30'000'000, /*server_sessions=*/256);
  PreemptionPolicy policy;
  policy.enabled = true;
  PolicyEngine engine(*sys.manager, *sys.sessions, policy);

  std::mutex events_mu;
  std::vector<VictimEvent> events;
  std::atomic<std::size_t> upgrades{0};
  engine.set_victim_observer([&](const VictimEvent& e) {
    std::lock_guard lk(events_mu);
    events.push_back(e);
  });
  engine.set_upgrade_observer([&](const UpgradeEvent&) { upgrades.fetch_add(1); });

  ServiceConfig config;
  config.workers = 4;
  config.queue_capacity = 256;
  config.policy = &engine;
  config.upgrade_scan_interval_ms = 2.0;
  NegotiationService service(*sys.manager, *sys.sessions, config);
  service.start();

  constexpr int kThreads = 4;
  constexpr int kPerThread = 40;
  std::vector<std::thread> submitters;
  std::atomic<std::uint64_t> next_id{1};
  for (int t = 0; t < kThreads; ++t) {
    submitters.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        const std::uint64_t id = next_id.fetch_add(1);
        auto future = service.submit(class_request(
            sys.clients[static_cast<std::size_t>(t) % sys.clients.size()], class_for(id), id));
        const NegotiationResult result = future.get();
        // Periodically complete some playing sessions so capacity churns
        // and the upgrade scanner has promotions to find.
        if (i % 8 == 7) {
          const std::vector<SessionId> playing = sys.sessions->playing_sessions();
          if (!playing.empty()) {
            sys.sessions->complete(playing[id % playing.size()]);
          }
        }
        (void)result;
      }
    });
  }
  for (std::thread& t : submitters) t.join();
  service.stop();

  assert_no_double_release(events);

  // Drain everything still playing or pending and check exact accounting.
  for (SessionId id : sys.sessions->playing_sessions()) sys.sessions->complete(id);
  // Pending-confirmation sessions (none expected under auto_confirm, but a
  // worker stopped mid-admission could leave one): reject to release.
  sys.sessions->prune_finished();
  ASSERT_TRUE(sys.drained()) << "service run left reservations behind";
  EXPECT_TRUE(sys.transport->accounting_consistent());
  EXPECT_EQ(sys.sessions->opened_total(), sys.sessions->released_total());
}

// ---------------------------------------------------------------------------
// Bare-engine torture: negotiating threads (all classes), a dedicated
// upgrade-scanning thread, and a completer thread churning capacity — every
// shared structure (session table, farm, transport, metrics, observers) hit
// concurrently.
TEST(PolicyConcurrency, BareEngineTortureDrainsConsistently) {
  ServiceSystem sys(8, /*access_bps=*/1'000'000'000, /*backbone_bps=*/10'000'000'000,
                    /*server_bps=*/25'000'000, /*server_sessions=*/256);
  MetricsRegistry metrics;
  PreemptionPolicy policy;
  policy.enabled = true;
  PolicyEngine engine(*sys.manager, *sys.sessions, policy, &metrics);

  std::mutex events_mu;
  std::vector<VictimEvent> events;
  engine.set_victim_observer([&](const VictimEvent& e) {
    std::lock_guard lk(events_mu);
    events.push_back(e);
  });

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> next_id{1};

  std::vector<std::thread> negotiators;
  for (int t = 0; t < 3; ++t) {
    negotiators.emplace_back([&, t] {
      for (int i = 0; i < 50; ++i) {
        const std::uint64_t id = next_id.fetch_add(1);
        NegotiationRequest request = class_request(
            sys.clients[static_cast<std::size_t>(t) % sys.clients.size()], class_for(id), id);
        NegotiationResult result = engine.negotiate(request);
        if (result.has_commitment()) {
          auto opened = sys.sessions->open(request.client, request.profile, std::move(result),
                                           /*now_s=*/0.0, request.session_class);
          if (opened.ok()) (void)sys.sessions->confirm(opened.value(), /*now_s=*/0.5);
        }
      }
    });
  }

  std::thread scanner([&] {
    while (!stop.load()) (void)engine.run_upgrades();
  });
  std::thread completer([&] {
    std::uint64_t n = 0;
    while (!stop.load()) {
      const std::vector<SessionId> playing = sys.sessions->playing_sessions();
      if (!playing.empty()) sys.sessions->complete(playing[n++ % playing.size()]);
    }
  });

  for (std::thread& t : negotiators) t.join();
  stop.store(true);
  scanner.join();
  completer.join();

  assert_no_double_release(events);

  for (SessionId id : sys.sessions->playing_sessions()) sys.sessions->complete(id);
  ASSERT_TRUE(sys.drained()) << "torture run left reservations behind";
  EXPECT_TRUE(sys.transport->accounting_consistent());
  EXPECT_EQ(sys.sessions->opened_total(), sys.sessions->released_total());

  // Released victims must also be gone from the table's point of view:
  // their terminal state is kAborted with the policy's abort reason.
  for (const VictimEvent& e : events) {
    if (e.action != VictimAction::kReleased) continue;
    const auto view = sys.sessions->snapshot(e.session);
    if (!view.has_value()) continue;  // pruned is fine
    EXPECT_EQ(view->state, SessionState::kAborted);
    EXPECT_EQ(view->abort_reason, kPreemptedAbortReason);
  }
}

}  // namespace
}  // namespace qosnp
