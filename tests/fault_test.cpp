// Deterministic failure scenarios against the fault-injection layer
// (src/fault) and the retrying committer: transient refusals recovered by
// retry, permanent failures skipping to the next offer, total outage
// yielding FAILEDTRYLATER, and the RAII leak check — everything admitted
// through a decorator is released through it, under any fault plan.
#include "fault/fault_injector.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "core/classify.hpp"
#include "core/commit.hpp"
#include "core/enumerate.hpp"
#include "core/qos_manager.hpp"
#include "test_system.hpp"

namespace qosnp {
namespace {

using testing::TestSystem;

OfferList enumerate_for(TestSystem& sys, const UserProfile& profile) {
  auto doc = sys.catalog.find("article");
  auto feasible = compatible_variants(doc, sys.client, profile.mm);
  EXPECT_TRUE(feasible.ok());
  OfferList list = enumerate_offers(feasible.value(), profile.mm, CostModel{});
  classify_offers(list.offers, profile.mm, profile.importance);
  return list;
}

/// First offer whose components all live on server-a (exists: the article
/// has a full ladder on each server).
const SystemOffer* all_on_server_a(const OfferList& list) {
  for (const SystemOffer& o : list.offers) {
    bool all_a = true;
    for (const auto& c : o.components) all_a &= c.variant->server == "server-a";
    if (all_a) return &o;
  }
  return nullptr;
}

std::int64_t total_server_reserved(TestSystem& sys) {
  std::int64_t total = 0;
  for (const auto& id : sys.farm.list()) total += sys.farm.find(id)->usage().reserved_bps;
  return total;
}

TEST(Fault, OutageIsRecoveredByRetry) {
  // server-a refuses its first two admission events (a short outage); with
  // retries the third attempt lands. Without retries the same plan fails.
  FaultPlan plan;
  plan.per_server["server-a"].outage_after_events = 0;
  plan.per_server["server-a"].outage_length_events = 2;

  const UserProfile profile = TestSystem::tolerant_profile();
  {
    TestSystem sys;
    FaultyServerFarm faulty(sys.farm, plan);
    OfferList list = enumerate_for(sys, profile);
    const SystemOffer* offer = all_on_server_a(list);
    ASSERT_NE(offer, nullptr);
    RetryPolicy retry;
    retry.max_attempts = 4;
    ResourceCommitter committer(faulty, *sys.transport, retry);
    auto commitment = committer.commit(sys.client, *offer);
    ASSERT_TRUE(commitment.ok()) << commitment.error();
    EXPECT_EQ(commitment.value().stats().attempts, 3);
    EXPECT_EQ(commitment.value().stats().retries, 2);
    EXPECT_EQ(commitment.value().stats().transient_failures, 2);
    EXPECT_EQ(faulty.server_stats("server-a").outage_refusals, 2);
  }
  {
    TestSystem sys;
    FaultyServerFarm faulty(sys.farm, plan);
    OfferList list = enumerate_for(sys, profile);
    const SystemOffer* offer = all_on_server_a(list);
    ASSERT_NE(offer, nullptr);
    ResourceCommitter committer(faulty, *sys.transport);  // no retries
    auto commitment = committer.commit(sys.client, *offer);
    ASSERT_FALSE(commitment.ok());
    EXPECT_TRUE(commitment.error().transient);
  }
}

TEST(Fault, PermanentFailureSkipsToNextOfferWithoutRetrying) {
  // The best video variant points at a server that does not exist: the walk
  // must burn exactly one attempt on it (no retries — it can never heal)
  // and commit the next offer.
  TestSystem sys;
  MultimediaDocument doc = TestSystem::news_article();
  doc.id = "half-ghost";
  doc.monomedia[0].variants[0].server = "server-ghost";   // video/hi
  doc.monomedia[0].variants[1].server = "server-ghost";   // video/hi-b (same QoS)
  sys.catalog.add(doc);

  NegotiationConfig config;
  config.retry.max_attempts = 5;
  QoSManager manager(sys.catalog, sys.farm, *sys.transport, CostModel{}, config);
  const UserProfile profile = TestSystem::tolerant_profile();
  NegotiationResult outcome = manager.negotiate(make_negotiation_request(sys.client, "half-ghost", profile));
  ASSERT_TRUE(outcome.has_commitment());
  for (const auto& c : outcome.offers.offers[outcome.committed_index].components) {
    EXPECT_NE(c.variant->server, "server-ghost");
  }
  EXPECT_GE(outcome.commit_stats.permanent_failures, 1);
  EXPECT_EQ(outcome.commit_stats.retries, 0);  // nothing transient happened
}

TEST(Fault, TotalOutageYieldsFailedTryLater) {
  // Every server admission refuses transiently: retries exhaust on every
  // offer and the negotiation honestly reports FAILEDTRYLATER — and leaves
  // no reservation behind.
  TestSystem sys;
  FaultPlan plan;
  plan.server_defaults.transient_failure_p = 1.0;
  FaultyServerFarm faulty_farm(sys.farm, plan);
  FaultyTransportProvider faulty_transport(*sys.transport, plan);

  NegotiationConfig config;
  config.retry.max_attempts = 3;
  QoSManager manager(sys.catalog, faulty_farm, faulty_transport, CostModel{}, config);
  const UserProfile profile = TestSystem::tolerant_profile();
  NegotiationResult outcome = manager.negotiate(make_negotiation_request(sys.client, "article", profile));
  EXPECT_EQ(outcome.verdict, NegotiationStatus::kFailedTryLater);
  EXPECT_FALSE(outcome.has_commitment());
  EXPECT_GT(outcome.commit_stats.transient_failures, 0);
  EXPECT_GT(outcome.commit_stats.retries, 0);
  EXPECT_EQ(sys.transport->active_flows(), 0u);
  EXPECT_EQ(total_server_reserved(sys), 0);
  EXPECT_EQ(faulty_farm.stats().admitted, 0);
}

TEST(Fault, NothingLeaksUnderFlakyFaults) {
  // Probabilistic refusals plus flaky releases on both surfaces: after every
  // commitment is released, each decorator must have seen exactly as many
  // releases as admissions, and the real components must be back to zero.
  TestSystem sys;
  FaultPlan plan;
  plan.seed = 97;
  plan.server_defaults.transient_failure_p = 0.3;
  plan.server_defaults.flaky_release_p = 0.5;
  plan.transport_defaults.transient_failure_p = 0.2;
  plan.transport_defaults.flaky_release_p = 0.3;
  FaultyServerFarm faulty_farm(sys.farm, plan);
  FaultyTransportProvider faulty_transport(*sys.transport, plan);

  const UserProfile profile = TestSystem::tolerant_profile();
  OfferList list = enumerate_for(sys, profile);
  RetryPolicy retry;
  retry.max_attempts = 3;
  {
    std::vector<Commitment> held;
    ResourceCommitter committer(faulty_farm, faulty_transport, retry);
    for (int round = 0; round < 12; ++round) {
      auto c = committer.commit(sys.client, list.offers[round % list.offers.size()]);
      if (c.ok()) held.push_back(std::move(c.value()));
    }
    EXPECT_GT(held.size(), 0u);  // some rounds survive a 30% fault rate
  }  // RAII releases everything held

  const FaultStats farm_stats = faulty_farm.stats();
  EXPECT_GT(farm_stats.admitted, 0);
  EXPECT_EQ(farm_stats.admitted, farm_stats.released);
  for (const auto& id : sys.farm.list()) {
    const FaultStats per_server = faulty_farm.server_stats(id);
    EXPECT_EQ(per_server.admitted, per_server.released) << id;
    EXPECT_EQ(sys.farm.find(id)->usage().reserved_bps, 0) << id;
    EXPECT_EQ(sys.farm.find(id)->usage().sessions, 0) << id;
  }
  const FaultStats net_stats = faulty_transport.stats();
  EXPECT_EQ(net_stats.admitted, net_stats.released);
  EXPECT_EQ(sys.transport->active_flows(), 0u);
  for (std::size_t i = 0; i < sys.transport->topology().link_count(); ++i) {
    EXPECT_EQ(sys.transport->link_usage(i).reserved_bps, 0) << "link " << i;
  }
}

TEST(Fault, LatencySpikesAreRecordedNotFatal) {
  TestSystem sys;
  FaultPlan plan;
  plan.server_defaults.latency_spike_p = 1.0;
  plan.server_defaults.latency_spike_ms = 25.0;
  FaultyServerFarm faulty(sys.farm, plan);
  const UserProfile profile = TestSystem::tolerant_profile();
  OfferList list = enumerate_for(sys, profile);
  ResourceCommitter committer(faulty, *sys.transport);
  auto commitment = committer.commit(sys.client, list.offers[0]);
  ASSERT_TRUE(commitment.ok()) << commitment.error();
  const FaultStats stats = faulty.stats();
  EXPECT_EQ(stats.latency_spikes, 3);  // one per admitted component
  EXPECT_DOUBLE_EQ(stats.injected_latency_ms, 75.0);
}

TEST(Fault, RetriesBeatNoRetriesUnderTwentyPercentFaults) {
  // The ISSUE acceptance criterion: under a seeded 20% transient-failure
  // plan, RetryPolicy{max_attempts=3} commits strictly more offers than
  // retries-disabled, and the seeded run is bit-reproducible.
  const UserProfile profile = TestSystem::tolerant_profile();
  auto run = [&](int max_attempts) {
    std::vector<bool> outcomes;
    int successes = 0;
    for (std::uint64_t seed = 1; seed <= 30; ++seed) {
      TestSystem sys;
      FaultPlan plan;
      plan.seed = seed;
      plan.server_defaults.transient_failure_p = 0.2;
      plan.transport_defaults.transient_failure_p = 0.2;
      FaultyServerFarm faulty_farm(sys.farm, plan);
      FaultyTransportProvider faulty_transport(*sys.transport, plan);
      OfferList list = enumerate_for(sys, profile);
      RetryPolicy retry;
      retry.max_attempts = max_attempts;
      ResourceCommitter committer(faulty_farm, faulty_transport, retry);
      auto c = committer.commit(sys.client, list.offers[0]);
      outcomes.push_back(c.ok());
      if (c.ok()) ++successes;
    }
    return std::pair{successes, outcomes};
  };

  const auto [with_retries, pattern_a] = run(3);
  const auto [without_retries, pattern_b] = run(1);
  EXPECT_GT(with_retries, without_retries);

  // Same seeds, same policy -> identical per-seed outcomes.
  const auto [with_retries_again, pattern_a_again] = run(3);
  EXPECT_EQ(with_retries, with_retries_again);
  EXPECT_EQ(pattern_a, pattern_a_again);
}

TEST(Fault, SameSeedSameNegotiationTwice) {
  const UserProfile profile = TestSystem::tolerant_profile();
  auto negotiate_once = [&] {
    TestSystem sys;
    FaultPlan plan;
    plan.seed = 1234;
    plan.server_defaults.transient_failure_p = 0.35;
    plan.transport_defaults.transient_failure_p = 0.15;
    FaultyServerFarm faulty_farm(sys.farm, plan);
    FaultyTransportProvider faulty_transport(*sys.transport, plan);
    NegotiationConfig config;
    config.retry.max_attempts = 3;
    QoSManager manager(sys.catalog, faulty_farm, faulty_transport, CostModel{}, config);
    NegotiationResult outcome = manager.negotiate(make_negotiation_request(sys.client, "article", profile));
    return std::tuple{outcome.verdict, outcome.committed_index, outcome.commit_stats.attempts,
                      outcome.commit_stats.retries, outcome.commit_stats.transient_failures};
  };
  EXPECT_EQ(negotiate_once(), negotiate_once());
}

}  // namespace
}  // namespace qosnp
