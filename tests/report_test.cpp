#include "core/report.hpp"

#include <gtest/gtest.h>

#include "test_system.hpp"

namespace qosnp {
namespace {

using testing::TestSystem;

TEST(Report, SucceededWindowShowsOfferAndCost) {
  TestSystem sys;
  QoSManager manager(sys.catalog, sys.farm, *sys.transport);
  NegotiationResult outcome =
      manager.negotiate(make_negotiation_request(sys.client, "article", TestSystem::tolerant_profile()));
  ASSERT_EQ(outcome.verdict, NegotiationStatus::kSucceeded);
  const std::string window = render_information_window(outcome);
  EXPECT_NE(window.find("SUCCEEDED"), std::string::npos);
  EXPECT_NE(window.find("video:"), std::string::npos);
  EXPECT_NE(window.find("audio:"), std::string::npos);
  EXPECT_NE(window.find("cost:"), std::string::npos);
  EXPECT_NE(window.find("choice period"), std::string::npos);
  EXPECT_NE(window.find("reserved: offer"), std::string::npos);
}

TEST(Report, LocalOfferWindowExplainsTheFloor) {
  TestSystem sys;
  QoSManager manager(sys.catalog, sys.farm, *sys.transport);
  ClientMachine bw = sys.client;
  bw.screen = ScreenSpec{640, 480, ColorDepth::kBlackWhite};
  UserProfile profile = TestSystem::tolerant_profile();
  profile.mm.video->worst = VideoQoS{ColorDepth::kColor, 10, 320};
  NegotiationResult outcome = manager.negotiate(make_negotiation_request(bw, "article", profile));
  ASSERT_EQ(outcome.verdict, NegotiationStatus::kFailedWithLocalOffer);
  const std::string window = render_information_window(outcome);
  EXPECT_NE(window.find("FAILEDWITHLOCALOFFER"), std::string::npos);
  EXPECT_NE(window.find("note:"), std::string::npos);
  EXPECT_NE(window.find("renegotiate"), std::string::npos);
}

TEST(Report, TryLaterWindowSuggestsRetry) {
  TestSystem sys(/*access_bps=*/50'000);
  QoSManager manager(sys.catalog, sys.farm, *sys.transport);
  NegotiationResult outcome =
      manager.negotiate(make_negotiation_request(sys.client, "article", TestSystem::tolerant_profile()));
  ASSERT_EQ(outcome.verdict, NegotiationStatus::kFailedTryLater);
  const std::string window = render_information_window(outcome);
  EXPECT_NE(window.find("Try again later"), std::string::npos);
}

TEST(Report, SummaryIsOneLine) {
  TestSystem sys;
  QoSManager manager(sys.catalog, sys.farm, *sys.transport);
  NegotiationResult outcome =
      manager.negotiate(make_negotiation_request(sys.client, "article", TestSystem::tolerant_profile()));
  const std::string summary = render_summary(outcome);
  EXPECT_EQ(summary.find('\n'), std::string::npos);
  EXPECT_NE(summary.find("SUCCEEDED"), std::string::npos);
}

TEST(Report, ClassificationTableMarksTheCommittedOffer) {
  TestSystem sys;
  QoSManager manager(sys.catalog, sys.farm, *sys.transport);
  const UserProfile profile = TestSystem::tolerant_profile();
  NegotiationResult outcome = manager.negotiate(make_negotiation_request(sys.client, "article", profile));
  ASSERT_TRUE(outcome.has_commitment());
  const std::string table = render_classification_table(outcome, profile.mm, 5);
  EXPECT_NE(table.find("> 1"), std::string::npos);  // rank 1 committed
  EXPECT_NE(table.find("DESIRABLE"), std::string::npos);
  EXPECT_NE(table.find("article/video"), std::string::npos);
  EXPECT_NE(table.find("... "), std::string::npos);  // 20 offers, 5 rows
}

TEST(Report, ClassificationTableHandlesEmptyOutcome) {
  NegotiationResult empty;
  const std::string table = render_classification_table(empty, MMProfile{});
  EXPECT_NE(table.find("classified 0 system offers"), std::string::npos);
}

TEST(Report, EveryStatusRendersNonEmpty) {
  // Synthetic outcomes for statuses not easily produced above.
  for (const NegotiationStatus status :
       {NegotiationStatus::kSucceeded, NegotiationStatus::kFailedWithOffer,
        NegotiationStatus::kFailedTryLater, NegotiationStatus::kFailedWithoutOffer,
        NegotiationStatus::kFailedWithLocalOffer}) {
    NegotiationResult outcome;
    outcome.verdict = status;
    const std::string window = render_information_window(outcome);
    EXPECT_NE(window.find(to_string(status)), std::string::npos);
    EXPECT_GT(window.size(), 50u);
  }
}

}  // namespace
}  // namespace qosnp
