// NodeConfig builder suite: every field validates at the setter that wrote
// it (per-field error messages), the finishers hand validated sub-configs to
// the subsystems, and the plan-cache switch produces exactly what
// NegotiationConfig::plan_cache takes. Written entirely through the builder
// — naming the loose structs here would trip scripts/check_no_deprecated.sh,
// by design.
#include "netio/node_config.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

namespace qosnp {
namespace {

/// The per-field contract: the exception message names the field and rule.
template <typename Set>
void expect_field_error(Set set, const std::string& expected) {
  try {
    set();
    FAIL() << "expected NodeConfig to reject the field, wanted: " << expected;
  } catch (const std::invalid_argument& e) {
    EXPECT_EQ(std::string(e.what()), expected);
  }
}

TEST(NodeConfig, ServiceFieldsFlowThroughTheFinisher) {
  MetricsRegistry registry;
  const auto svc = NodeConfig{}
                       .workers(7)
                       .queue_capacity(33)
                       .deadline_ms(125.0)
                       .simulated_rtt_ms(2.5)
                       .auto_confirm(false)
                       .metrics(&registry)
                       .service();
  EXPECT_EQ(svc.workers, 7u);
  EXPECT_EQ(svc.queue_capacity, 33u);
  EXPECT_EQ(svc.deadline_ms, 125.0);
  EXPECT_EQ(svc.simulated_rtt_ms, 2.5);
  EXPECT_FALSE(svc.auto_confirm);
  EXPECT_EQ(svc.metrics, &registry);
}

TEST(NodeConfig, WireFieldsFlowThroughTheFinisher) {
  MetricsRegistry registry;
  const auto net = NodeConfig{}
                       .bind_address("0.0.0.0")
                       .listen_port(0)
                       .listen_backlog(7)
                       .max_connections(12)
                       .max_frame_bytes(4096)
                       .idle_timeout_ms(250.0)
                       .metrics(&registry)
                       .wire_server();
  EXPECT_EQ(net.bind_address, "0.0.0.0");
  EXPECT_EQ(net.port, 0);
  EXPECT_EQ(net.listen_backlog, 7);
  EXPECT_EQ(net.max_connections, 12u);
  EXPECT_EQ(net.max_frame_bytes, 4096u);
  EXPECT_EQ(net.idle_timeout_ms, 250.0);
  EXPECT_EQ(net.metrics, &registry);
}

TEST(NodeConfig, CacheFieldsFlowThroughTheFinisher) {
  const auto policy = NodeConfig{}.cache_shards(3).cache_capacity(99).cache_policy();
  EXPECT_EQ(policy.shards, 3u);
  EXPECT_EQ(policy.capacity, 99u);
}

TEST(NodeConfig, PlanCacheSwitchProducesTheCacheOrNothing) {
  EXPECT_EQ(NodeConfig{}.make_plan_cache(), nullptr);
  EXPECT_FALSE(NodeConfig{}.plan_cache_on());

  NodeConfig node;
  node.plan_cache_enabled(true).cache_capacity(8);
  EXPECT_TRUE(node.plan_cache_on());
  const auto cache = node.make_plan_cache();
  ASSERT_NE(cache, nullptr);
  // Two calls build two independent caches (one per shard, by design).
  EXPECT_NE(node.make_plan_cache(), cache);
}

TEST(NodeConfig, EveryBadFieldNamesItselfInTheError) {
  expect_field_error([] { NodeConfig{}.workers(0); }, "NodeConfig.workers: must be >= 1");
  expect_field_error([] { NodeConfig{}.queue_capacity(0); },
                     "NodeConfig.queue_capacity: must be >= 1");
  expect_field_error([] { NodeConfig{}.deadline_ms(-1.0); },
                     "NodeConfig.deadline_ms: must not be negative");
  expect_field_error([] { NodeConfig{}.simulated_rtt_ms(-0.5); },
                     "NodeConfig.simulated_rtt_ms: must not be negative");
  expect_field_error([] { NodeConfig{}.cache_shards(0); },
                     "NodeConfig.cache_shards: must be >= 1");
  expect_field_error([] { NodeConfig{}.cache_capacity(0); },
                     "NodeConfig.cache_capacity: must be >= 1");
  expect_field_error([] { NodeConfig{}.bind_address(""); },
                     "NodeConfig.bind_address: must not be empty");
  expect_field_error([] { NodeConfig{}.listen_backlog(0); },
                     "NodeConfig.listen_backlog: must be >= 1");
  expect_field_error([] { NodeConfig{}.max_connections(0); },
                     "NodeConfig.max_connections: must be >= 1");
  expect_field_error([] { NodeConfig{}.max_frame_bytes(8); },
                     "NodeConfig.max_frame_bytes: must fit at least one non-empty frame");
  expect_field_error([] { NodeConfig{}.idle_timeout_ms(-10.0); },
                     "NodeConfig.idle_timeout_ms: must not be negative");
}

TEST(NodeConfig, RejectedValuesLeaveThePreviousValueStanding) {
  NodeConfig node;
  node.workers(5);
  EXPECT_THROW(node.workers(0), std::invalid_argument);
  EXPECT_EQ(node.service().workers, 5u);
}

TEST(NodeConfig, DefaultsMatchTheSubsystemDefaults) {
  // A default-built NodeConfig must behave exactly like default-built
  // sub-configs: same worker pool, same cache policy, same listener.
  const NodeConfig node;
  EXPECT_EQ(node.service().workers, 4u);
  EXPECT_EQ(node.service().queue_capacity, 64u);
  EXPECT_TRUE(node.service().auto_confirm);
  EXPECT_EQ(node.cache_policy().shards, 8u);
  EXPECT_EQ(node.cache_policy().capacity, 1024u);
  EXPECT_EQ(node.wire_server().bind_address, "127.0.0.1");
  EXPECT_EQ(node.wire_server().max_connections, 256u);
}

}  // namespace
}  // namespace qosnp
