// Reproduces the paper's Sec. 5 worked examples exactly (E1-E3) and checks
// the classification machinery's invariants.
#include "core/classify.hpp"
#include "core/paper_example.hpp"
#include "document/corpus.hpp"

#include <gtest/gtest.h>

#include <algorithm>

namespace qosnp {
namespace {

std::vector<std::string> names(const std::vector<SystemOffer>& offers) {
  std::vector<std::string> out;
  out.reserve(offers.size());
  for (const auto& o : offers) out.push_back(paper::offer_name(o));
  return out;
}

// --- E1: static negotiation status (Sec. 5.2.1). --------------------------

TEST(PaperE1, SnsOfTheFourOffers) {
  auto ex = paper::classification_example();
  const ImportanceProfile imp = paper::importance_setting(1);
  // "The results are: offer1: CONSTRAINT, offer2: CONSTRAINT, offer3:
  //  CONSTRAINT, and offer4: ACCEPTABLE."
  EXPECT_EQ(compute_sns(ex.offers.offers[0], ex.profile.mm, imp), Sns::kConstraint);
  EXPECT_EQ(compute_sns(ex.offers.offers[1], ex.profile.mm, imp), Sns::kConstraint);
  EXPECT_EQ(compute_sns(ex.offers.offers[2], ex.profile.mm, imp), Sns::kConstraint);
  EXPECT_EQ(compute_sns(ex.offers.offers[3], ex.profile.mm, imp), Sns::kAcceptable);
}

TEST(PaperE1, PlainRuleAgreesOnTheseOffers) {
  auto ex = paper::classification_example();
  const ImportanceProfile imp = paper::importance_setting(1);
  ClassificationPolicy plain;
  plain.sns_rule = ClassificationPolicy::SnsRule::kPlain;
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(compute_sns(ex.offers.offers[i], ex.profile.mm, imp, plain),
              compute_sns(ex.offers.offers[i], ex.profile.mm, imp));
  }
}

// --- E2: overall importance factor and orderings (Sec. 5.2.2). ------------

TEST(PaperE2, OifSetting1) {
  auto ex = paper::classification_example();
  const ImportanceProfile imp = paper::importance_setting(1);
  // "offer1: 10, offer2: 7, and offer3: 12, and offer4: 7."
  EXPECT_DOUBLE_EQ(compute_oif(ex.offers.offers[0], imp), 10.0);
  EXPECT_DOUBLE_EQ(compute_oif(ex.offers.offers[1], imp), 7.0);
  EXPECT_DOUBLE_EQ(compute_oif(ex.offers.offers[2], imp), 12.0);
  EXPECT_DOUBLE_EQ(compute_oif(ex.offers.offers[3], imp), 7.0);
}

TEST(PaperE2, OrderingSetting1) {
  auto ex = paper::classification_example();
  ex.profile.importance = paper::importance_setting(1);
  classify_offers(ex.offers.offers, ex.profile.mm, ex.profile.importance);
  // "the offers are classified as follows: offer4, offer3, offer1, and offer2."
  EXPECT_EQ(names(ex.offers.offers),
            (std::vector<std::string>{"offer4", "offer3", "offer1", "offer2"}));
}

TEST(PaperE2, OifSetting2) {
  auto ex = paper::classification_example();
  const ImportanceProfile imp = paper::importance_setting(2);
  // "offer1: 20, offer2: 23, and offer3: 24, and offer4: 27."
  EXPECT_DOUBLE_EQ(compute_oif(ex.offers.offers[0], imp), 20.0);
  EXPECT_DOUBLE_EQ(compute_oif(ex.offers.offers[1], imp), 23.0);
  EXPECT_DOUBLE_EQ(compute_oif(ex.offers.offers[2], imp), 24.0);
  EXPECT_DOUBLE_EQ(compute_oif(ex.offers.offers[3], imp), 27.0);
}

TEST(PaperE2, OrderingSetting2) {
  auto ex = paper::classification_example();
  ex.profile.importance = paper::importance_setting(2);
  classify_offers(ex.offers.offers, ex.profile.mm, ex.profile.importance);
  // "offer4, offer3, offer2, and offer1."
  EXPECT_EQ(names(ex.offers.offers),
            (std::vector<std::string>{"offer4", "offer3", "offer2", "offer1"}));
}

TEST(PaperE2, OifSetting3) {
  auto ex = paper::classification_example();
  const ImportanceProfile imp = paper::importance_setting(3);
  // "offer1: -10, offer2: -16, and offer3: -12, and offer4: -20."
  EXPECT_DOUBLE_EQ(compute_oif(ex.offers.offers[0], imp), -10.0);
  EXPECT_DOUBLE_EQ(compute_oif(ex.offers.offers[1], imp), -16.0);
  EXPECT_DOUBLE_EQ(compute_oif(ex.offers.offers[2], imp), -12.0);
  EXPECT_DOUBLE_EQ(compute_oif(ex.offers.offers[3], imp), -20.0);
}

TEST(PaperE2, OrderingSetting3) {
  auto ex = paper::classification_example();
  ex.profile.importance = paper::importance_setting(3);
  classify_offers(ex.offers.offers, ex.profile.mm, ex.profile.importance);
  // "offer1, offer3, offer2, and offer4." — reproduced by the
  // importance-weighted SNS rule (see classify.hpp header).
  EXPECT_EQ(names(ex.offers.offers),
            (std::vector<std::string>{"offer1", "offer3", "offer2", "offer4"}));
}

TEST(PaperE2, Setting3PlainRuleAblationDiffers) {
  // Under the literal SNS-primary rule offer4 (ACCEPTABLE) sorts first —
  // documenting the inconsistency in the paper's third example.
  auto ex = paper::classification_example();
  ex.profile.importance = paper::importance_setting(3);
  ClassificationPolicy plain;
  plain.sns_rule = ClassificationPolicy::SnsRule::kPlain;
  classify_offers(ex.offers.offers, ex.profile.mm, ex.profile.importance, plain);
  EXPECT_EQ(paper::offer_name(ex.offers.offers[0]), "offer4");
}

// --- E3: motivating example (Sec. 5.1). ------------------------------------

TEST(PaperE3, MotivatingExampleClassification) {
  auto ex = paper::motivating_example();
  ex.profile.importance = paper::importance_setting(1);
  classify_offers(ex.offers.offers, ex.profile.mm, ex.profile.importance);
  // offerC (colour, 25fps, TV) at $6 both satisfies the desired QoS and the
  // $6 budget: the unique DESIRABLE offer, hence the automatic choice —
  // exactly the "smart negotiation" selling point of Sec. 5.1.
  EXPECT_EQ(paper::offer_name(ex.offers.offers[0]), "offerC");
  EXPECT_EQ(ex.offers.offers[0].sns, Sns::kDesirable);
  EXPECT_EQ(ex.offers.offers[1].sns, Sns::kConstraint);
  EXPECT_EQ(ex.offers.offers[2].sns, Sns::kConstraint);
}

// --- Invariants. -----------------------------------------------------------

TEST(Classify, SatisfiesUserMatchesWorstAndBudget) {
  auto ex = paper::classification_example();
  EXPECT_FALSE(satisfies_user(ex.offers.offers[0], ex.profile.mm));  // QoS violated
  EXPECT_FALSE(satisfies_user(ex.offers.offers[3], ex.profile.mm));  // budget violated
  MMProfile relaxed = ex.profile.mm;
  relaxed.cost.max_cost = Money::dollars(5);
  EXPECT_TRUE(satisfies_user(ex.offers.offers[3], relaxed));
}

TEST(Classify, QosMattersDetectsZeroImportance) {
  auto ex = paper::classification_example();
  EXPECT_TRUE(qos_matters(ex.profile.mm, paper::importance_setting(1)));
  EXPECT_TRUE(qos_matters(ex.profile.mm, paper::importance_setting(2)));
  EXPECT_FALSE(qos_matters(ex.profile.mm, paper::importance_setting(3)));
}

TEST(Classify, OifOnlyAblationIgnoresSns) {
  auto ex = paper::classification_example();
  ex.profile.importance = paper::importance_setting(1);
  ClassificationPolicy policy;
  policy.oif_only = true;
  classify_offers(ex.offers.offers, ex.profile.mm, ex.profile.importance, policy);
  // Pure OIF: offer3 (12) first, offer4 (7, cheaper than... no: offer2 $4
  // < offer4 $5) — ties broken by cost.
  EXPECT_EQ(names(ex.offers.offers),
            (std::vector<std::string>{"offer3", "offer1", "offer2", "offer4"}));
}

TEST(Classify, SortIsDeterministicUnderPermutation) {
  auto ex = paper::classification_example();
  ex.profile.importance = paper::importance_setting(1);
  auto offers_a = ex.offers.offers;
  auto offers_b = ex.offers.offers;
  std::reverse(offers_b.begin(), offers_b.end());
  classify_offers(offers_a, ex.profile.mm, ex.profile.importance);
  classify_offers(offers_b, ex.profile.mm, ex.profile.importance);
  EXPECT_EQ(names(offers_a), names(offers_b));
}

TEST(Classify, ParallelMatchesSerial) {
  // Build a large offer list by repeating the example ladder with varying
  // costs, then check pool-classification equals serial classification.
  auto ex = paper::classification_example();
  std::vector<SystemOffer> big;
  for (int i = 0; i < 500; ++i) {
    for (const auto& o : ex.offers.offers) {
      SystemOffer copy = o;
      copy.cost.total = o.cost.total + Money::cents(i % 37);
      big.push_back(copy);
    }
  }
  auto serial = big;
  auto parallel = big;
  ex.profile.importance = paper::importance_setting(1);
  classify_offers(serial, ex.profile.mm, ex.profile.importance);
  classify_offers(parallel, ex.profile.mm, ex.profile.importance, {}, &ThreadPool::shared());
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].sns, parallel[i].sns);
    EXPECT_DOUBLE_EQ(serial[i].oif, parallel[i].oif);
    EXPECT_EQ(serial[i].total_cost(), parallel[i].total_cost());
    EXPECT_EQ(paper::offer_name(serial[i]), paper::offer_name(parallel[i]));
  }
}

TEST(Classify, SnsNeverImprovesWhenQosDegrades) {
  // Property: degrading one characteristic never improves the SNS grade.
  auto ex = paper::classification_example();
  const ImportanceProfile imp = paper::importance_setting(1);
  const Sns base = compute_sns(ex.offers.offers[3], ex.profile.mm, imp);  // ACCEPTABLE
  for (std::size_t worse : {0u, 1u, 2u}) {
    EXPECT_GE(compute_sns(ex.offers.offers[worse], ex.profile.mm, imp), base);
  }
}

TEST(Classify, OifLinearInCostImportance) {
  auto ex = paper::classification_example();
  ImportanceProfile imp = paper::importance_setting(2);  // cost importance 0
  const double qos_only = compute_oif(ex.offers.offers[0], imp);
  imp.cost_per_dollar = 4.0;
  EXPECT_DOUBLE_EQ(compute_oif(ex.offers.offers[0], imp), qos_only - 4.0 * 2.5);
  imp.cost_per_dollar = 8.0;
  EXPECT_DOUBLE_EQ(compute_oif(ex.offers.offers[0], imp), qos_only - 8.0 * 2.5);
}

TEST(Classify, SortedOrderIsConsistentWithPairwiseRules) {
  // Property: after classification, every adjacent pair respects the
  // documented order (SNS ascending; OIF descending within an SNS class;
  // cost ascending within an OIF tie) — over a large randomised offer set.
  auto ex = paper::classification_example();
  ex.profile.importance = paper::importance_setting(1);
  std::vector<SystemOffer> offers;
  Rng rng(2024);
  for (int i = 0; i < 800; ++i) {
    SystemOffer o = ex.offers.offers[rng.below(4)];
    o.cost.total = Money::cents(static_cast<std::int64_t>(rng.between(50, 800)));
    offers.push_back(std::move(o));
  }
  classify_offers(offers, ex.profile.mm, ex.profile.importance);
  for (std::size_t i = 1; i < offers.size(); ++i) {
    const SystemOffer& a = offers[i - 1];
    const SystemOffer& b = offers[i];
    ASSERT_LE(a.sns, b.sns) << i;
    if (a.sns == b.sns) {
      ASSERT_GE(a.oif, b.oif) << i;
      if (a.oif == b.oif) {
        ASSERT_LE(a.total_cost(), b.total_cost()) << i;
      }
    }
  }
}

TEST(Classify, ServerPreferenceBreaksReplicaTies) {
  // Two identical replicas on different servers, equal cost: the preferred
  // server's replica must rank first (paper Sec. 8's "the user prefers
  // certain servers over others").
  auto doc = std::make_shared<MultimediaDocument>();
  doc->id = "replicated";
  Monomedia video;
  video.id = "replicated/video";
  video.kind = MediaKind::kVideo;
  video.duration_s = 60.0;
  const VideoQoS qos{ColorDepth::kColor, 25, kTvResolution};
  video.variants = {
      make_video_variant("on-far", qos, CodingFormat::kMPEG1, 60.0, "far-server"),
      make_video_variant("on-near", qos, CodingFormat::kMPEG1, 60.0, "near-server"),
  };
  doc->monomedia.push_back(std::move(video));

  auto pinned = [&](std::size_t index) {
    SystemOffer offer;
    OfferComponent c;
    c.monomedia = &doc->monomedia.front();
    c.variant = &doc->monomedia.front().variants[index];
    c.requirements = map_variant(*c.variant, 60.0, TimeProfile{});
    offer.components.push_back(c);
    offer.cost.total = Money::dollars(3);
    return offer;
  };
  std::vector<SystemOffer> offers = {pinned(0), pinned(1)};

  UserProfile profile;
  VideoProfile vp;
  vp.desired = qos;
  vp.worst = qos;
  profile.mm.video = vp;
  profile.mm.cost.max_cost = Money::dollars(5);
  profile.importance = ImportanceProfile::defaults();
  profile.importance.preferred_servers = {"near-server"};
  profile.importance.server_bonus = 2.0;

  classify_offers(offers, profile.mm, profile.importance);
  EXPECT_EQ(offers[0].components[0].variant->id, "on-near");
  EXPECT_DOUBLE_EQ(offers[0].oif, offers[1].oif + 2.0);

  // Without the bonus the deterministic id tie-break wins instead.
  profile.importance.server_bonus = 0.0;
  std::vector<SystemOffer> plain = {pinned(0), pinned(1)};
  classify_offers(plain, profile.mm, profile.importance);
  EXPECT_EQ(plain[0].components[0].variant->id, "on-far");
}

TEST(Classify, DerivedUserOfferMatchesVariantQos) {
  auto ex = paper::classification_example();
  const UserOffer user = derive_user_offer(ex.offers.offers[2]);
  ASSERT_TRUE(user.video.has_value());
  EXPECT_EQ(user.video->color, ColorDepth::kGray);
  EXPECT_EQ(user.video->frame_rate_fps, 25);
  EXPECT_EQ(user.cost, Money::dollars(3));
  EXPECT_FALSE(user.audio.has_value());
}

TEST(Classify, UserOfferDescribeIsReadable) {
  auto ex = paper::classification_example();
  const std::string s = derive_user_offer(ex.offers.offers[3]).describe();
  EXPECT_NE(s.find("color"), std::string::npos);
  EXPECT_NE(s.find("$5.00"), std::string::npos);
}

}  // namespace
}  // namespace qosnp
