// Differential and property tests for the lazy best-first offer stream
// (OfferStream): over seeded random corpora, profiles, and policies, the
// stream must yield byte-identical offers in byte-identical order to the
// eager enumerate+classify oracle, produce identical NegotiationResults,
// and keep those guarantees while session adaptation pulls offers past the
// initially-consumed prefix — including under injected commitment faults.
// Also the regression test for the latent eager-truncation defect: with the
// product above max_offers, the eager cap can drop the true best offer
// before classification sees it; best-first keeps the best `max_offers`.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include "core/classify.hpp"
#include "core/enumerate.hpp"
#include "core/qos_manager.hpp"
#include "document/corpus.hpp"
#include "fault/fault_injector.hpp"
#include "session/session.hpp"
#include "test_system.hpp"
#include "util/rng.hpp"

namespace qosnp {
namespace {

using testing::TestSystem;

std::string signature(const SystemOffer& offer) {
  std::string sig;
  for (const OfferComponent& c : offer.components) {
    sig += c.variant->id;
    sig += '|';
  }
  return sig;
}

/// The eager oracle: materialise the whole product, then classify and sort.
OfferList eager_oracle(const FeasibleSet& feasible, const MMProfile& mm,
                       const ImportanceProfile& importance, ClassificationPolicy policy) {
  EnumerationConfig config;
  config.strategy = EnumerationStrategy::kEager;
  config.max_offers = 1'000'000;  // corpus products are far smaller: no cap
  OfferList list = enumerate_offers(feasible, mm, CostModel{}, config);
  classify_offers(list.offers, mm, importance, policy);
  return list;
}

/// A profile with randomised requested media, desired/worst ladders, budget,
/// and importance weights, to spread the cases over the grading space
/// (desirable/acceptable/constraint mixes, ill-formed worst>desired, ties).
UserProfile random_profile(Rng& rng) {
  UserProfile p = TestSystem::tolerant_profile();
  static const VideoQoS video_points[] = {
      VideoQoS{ColorDepth::kBlackWhite, 10, 320}, VideoQoS{ColorDepth::kGray, 15, 320},
      VideoQoS{ColorDepth::kColor, 25, 640}, VideoQoS{ColorDepth::kSuperColor, 30, 1280}};
  p.mm.video->desired = video_points[1 + rng.below(3)];
  p.mm.video->worst = video_points[rng.below(4)];  // occasionally ill-formed
  if (rng.chance(0.3)) {
    p.mm.audio.reset();
  } else {
    p.mm.audio->desired = AudioQoS{rng.chance(0.5) ? AudioQuality::kCD : AudioQuality::kRadio};
    p.mm.audio->worst = AudioQoS{rng.chance(0.8) ? AudioQuality::kTelephone : AudioQuality::kRadio};
  }
  if (rng.chance(0.3)) {
    p.mm.text.reset();
  } else if (rng.chance(0.3)) {
    p.mm.text->acceptable.clear();  // non-English texts become constraint
  }
  if (rng.chance(0.3)) p.mm.image = ImageProfile{};
  p.mm.cost.max_cost = Money::cents(50 + 25 * static_cast<std::int64_t>(rng.below(160)));
  if (rng.chance(0.3)) p.importance.cost_per_dollar = rng.uniform(0.1, 2.0);
  if (rng.chance(0.25)) {
    p.importance.preferred_servers = {"server-b"};
    p.importance.server_bonus = rng.uniform(0.1, 1.0);
  }
  return p;
}

// --- Tentpole guarantee: stream == oracle, everywhere. ---------------------

TEST(OfferStreamDifferential, MatchesEagerOracleAcrossSeededCorpora) {
  TestSystem sys;
  std::size_t cases = 0;
  for (std::uint64_t seed = 1; seed <= 150; ++seed) {
    CorpusConfig corpus;
    corpus.seed = seed;
    corpus.num_documents = 2;
    corpus.servers = {"server-a", "server-b"};
    Rng rng(seed * 7919);
    for (auto& raw : generate_corpus(corpus)) {
      auto doc = std::make_shared<const MultimediaDocument>(std::move(raw));
      for (int variant = 0; variant < 4; ++variant) {
        UserProfile profile = random_profile(rng);
        ClassificationPolicy policy;
        if (variant == 1) policy.sns_rule = ClassificationPolicy::SnsRule::kPlain;
        if (variant == 2) policy.oif_only = true;
        if (variant == 3) {
          // All QoS importances zero, cost dominant: the cost-only grading
          // of the importance-weighted rule (Sec. 5.2.2 example (3)).
          profile.importance = ImportanceProfile{};
          profile.importance.cost_per_dollar = 1.0;
        }
        const bool prune = rng.chance(0.5);
        const std::size_t cap = rng.chance(0.25) ? 3 + rng.below(8) : 100'000;

        auto feasible = compatible_variants(doc, sys.client, profile.mm);
        if (!feasible.ok()) continue;  // corpus may generate undecodable docs
        if (prune) prune_dominated_variants(feasible.value());
        FeasibleSet copy = feasible.value();

        const OfferList oracle =
            eager_oracle(feasible.value(), profile.mm, profile.importance, policy);
        OfferStream stream(std::move(copy), profile.mm, profile.importance, CostModel{},
                           policy, cap);
        ASSERT_EQ(stream.total_combinations(), oracle.total_combinations);
        // Capped streams must yield the *prefix* of the full classified
        // order — the best `cap` offers, not the first `cap` in document
        // order (the eager cap's defect, tested separately below).
        const std::size_t expect_n = std::min(cap, oracle.offers.size());
        ASSERT_EQ(stream.emit_limit(), expect_n);
        for (std::size_t i = 0; i < expect_n; ++i) {
          auto offer = stream.next();
          ASSERT_TRUE(offer.has_value())
              << "seed " << seed << " doc " << doc->id << " case " << variant
              << ": stream dried up at " << i << " of " << expect_n;
          const SystemOffer& expected = oracle.offers[i];
          ASSERT_EQ(signature(*offer), signature(expected))
              << "seed " << seed << " doc " << doc->id << " case " << variant
              << " prune=" << prune << " rank " << i;
          EXPECT_EQ(offer->sns, expected.sns) << signature(expected) << " rank " << i;
          EXPECT_EQ(offer->oif, expected.oif) << signature(expected) << " rank " << i;
          EXPECT_EQ(offer->total_cost(), expected.total_cost()) << signature(expected);
        }
        EXPECT_FALSE(stream.next().has_value());
        EXPECT_TRUE(stream.exhausted());
        EXPECT_EQ(stream.yielded(), expect_n);
        ++cases;
      }
    }
  }
  // The acceptance bar: the differential property must have been exercised
  // over at least 1000 seeded corpus cases (not silently skipped away).
  EXPECT_GE(cases, 1000u);
}

TEST(OfferStreamDifferential, TruncationFlagsMatchEagerSemantics) {
  TestSystem sys;
  const UserProfile profile = TestSystem::tolerant_profile();
  auto doc = sys.catalog.find("article");
  auto feasible = compatible_variants(doc, sys.client, profile.mm);
  ASSERT_TRUE(feasible.ok());
  // 20 combinations, cap 7: both strategies flag the truncation.
  EnumerationConfig config;
  config.max_offers = 7;
  config.strategy = EnumerationStrategy::kEager;
  const OfferList eager = enumerate_offers(feasible.value(), profile.mm, CostModel{}, config);
  EXPECT_TRUE(eager.truncated);
  OfferStream stream(feasible.value(), profile.mm, profile.importance, CostModel{},
                     ClassificationPolicy{}, 7);
  EXPECT_EQ(stream.emit_limit(), 7u);
  EXPECT_LT(stream.emit_limit(), stream.total_combinations());  // == truncated
  // Uncapped: neither truncates.
  OfferStream wide(feasible.value(), profile.mm, profile.importance, CostModel{},
                   ClassificationPolicy{}, 20'000);
  EXPECT_EQ(wide.emit_limit(), wide.total_combinations());
}

// --- Outcome parity: the whole Step 1-5 pipeline, both strategies. ---------

NegotiationConfig strategy_config(EnumerationStrategy strategy) {
  NegotiationConfig config;
  config.enumeration.strategy = strategy;
  return config;
}

TEST(OfferStreamDifferential, NegotiationResultMatchesEagerAcrossCorpora) {
  std::size_t compared = 0;
  for (std::uint64_t seed = 1; seed <= 40; ++seed) {
    TestSystem eager_sys;
    TestSystem lazy_sys;
    CorpusConfig corpus;
    corpus.seed = seed;
    corpus.num_documents = 3;
    corpus.servers = {"server-a", "server-b"};
    for (auto& doc : generate_corpus(corpus)) {
      eager_sys.catalog.add(MultimediaDocument{doc});
      lazy_sys.catalog.add(std::move(doc));
    }
    QoSManager eager(eager_sys.catalog, eager_sys.farm, *eager_sys.transport, CostModel{},
                     strategy_config(EnumerationStrategy::kEager));
    QoSManager lazy(lazy_sys.catalog, lazy_sys.farm, *lazy_sys.transport, CostModel{},
                    strategy_config(EnumerationStrategy::kBestFirst));
    Rng rng(seed);
    // Keep the outcomes (and so the commitments) alive for the whole seed:
    // resources then evolve identically on both sides request by request.
    std::vector<NegotiationResult> keep_eager, keep_lazy;
    for (const DocumentId& id : eager_sys.catalog.list()) {
      for (int rep = 0; rep < 2; ++rep) {
        const UserProfile profile = random_profile(rng);
        NegotiationResult a = eager.negotiate(make_negotiation_request(eager_sys.client, id, profile));
        NegotiationResult b = lazy.negotiate(make_negotiation_request(lazy_sys.client, id, profile));
        EXPECT_EQ(a.verdict, b.verdict) << "seed " << seed << " doc " << id;
        EXPECT_EQ(a.committed_index, b.committed_index) << "seed " << seed << " doc " << id;
        EXPECT_EQ(a.problems, b.problems) << "seed " << seed << " doc " << id;
        ASSERT_EQ(a.has_commitment(), b.has_commitment());
        if (a.has_commitment()) {
          EXPECT_EQ(signature(a.offers.offers[a.committed_index]),
                    signature(b.offers.offers[b.committed_index]));
          EXPECT_EQ(a.user_offer->cost, b.user_offer->cost);
          // The lazy side must not have materialised past the walk's needs.
          EXPECT_LE(b.offers.offers.size(), a.offers.offers.size());
        }
        ++compared;
        keep_eager.push_back(std::move(a));
        keep_lazy.push_back(std::move(b));
      }
    }
  }
  EXPECT_GE(compared, 200u);
}

// --- Regression: the eager cap's truncation defect. ------------------------

/// A document whose best variants sit *last* in every ladder, so the best
/// combination is the very last one in document (mixed-radix) order.
std::shared_ptr<const MultimediaDocument> best_last_document() {
  MultimediaDocument doc;
  doc.id = "best-last";
  doc.copyright_cost = Money::cents(50);
  const double duration = 120.0;
  Monomedia video;
  video.id = "best-last/video";
  video.kind = MediaKind::kVideo;
  video.duration_s = duration;
  for (int i = 0; i < 5; ++i) {
    video.variants.push_back(make_video_variant(
        "best-last/video/lo" + std::to_string(i), VideoQoS{ColorDepth::kBlackWhite, 10, 320},
        CodingFormat::kMPEG1, duration, i % 2 ? "server-a" : "server-b"));
  }
  video.variants.push_back(make_video_variant("best-last/video/best",
                                              VideoQoS{ColorDepth::kColor, 25, 640},
                                              CodingFormat::kMPEG1, duration, "server-a"));
  doc.monomedia.push_back(std::move(video));
  Monomedia audio;
  audio.id = "best-last/audio";
  audio.kind = MediaKind::kAudio;
  audio.duration_s = duration;
  for (int i = 0; i < 3; ++i) {
    audio.variants.push_back(make_audio_variant("best-last/audio/tel" + std::to_string(i),
                                                AudioQuality::kTelephone, CodingFormat::kADPCM,
                                                duration, i % 2 ? "server-b" : "server-a"));
  }
  audio.variants.push_back(make_audio_variant("best-last/audio/best", AudioQuality::kCD,
                                              CodingFormat::kPCM, duration, "server-b"));
  doc.monomedia.push_back(std::move(audio));
  return std::make_shared<const MultimediaDocument>(std::move(doc));
}

TEST(OfferStreamRegression, BestFirstCommitsTheBestOfferTheEagerCapDropped) {
  // 6 x 4 = 24 combinations, cap 10: the eager path enumerates the first 10
  // combinations in document order — all on the low-quality video rungs —
  // and the true best offer (best video + best audio, the 24th combination)
  // is truncated away before classification ever sees it.
  NegotiationConfig eager_config = strategy_config(EnumerationStrategy::kEager);
  eager_config.enumeration.max_offers = 10;
  NegotiationConfig lazy_config = strategy_config(EnumerationStrategy::kBestFirst);
  lazy_config.enumeration.max_offers = 10;

  UserProfile profile = TestSystem::tolerant_profile();
  profile.mm.text.reset();
  profile.mm.video->desired = VideoQoS{ColorDepth::kColor, 25, 640};
  profile.mm.audio->desired = AudioQoS{AudioQuality::kCD};

  TestSystem eager_sys;
  TestSystem lazy_sys;
  eager_sys.catalog.add(MultimediaDocument{*best_last_document()});
  lazy_sys.catalog.add(MultimediaDocument{*best_last_document()});
  QoSManager eager(eager_sys.catalog, eager_sys.farm, *eager_sys.transport, CostModel{},
                   eager_config);
  QoSManager lazy(lazy_sys.catalog, lazy_sys.farm, *lazy_sys.transport, CostModel{},
                  lazy_config);

  NegotiationResult truncated = eager.negotiate(make_negotiation_request(eager_sys.client, "best-last", profile));
  NegotiationResult best = lazy.negotiate(make_negotiation_request(lazy_sys.client, "best-last", profile));
  ASSERT_TRUE(truncated.has_commitment());
  ASSERT_TRUE(best.has_commitment());

  // Best-first commits the true best offer: both desired variants.
  EXPECT_EQ(signature(best.offers.offers[best.committed_index]),
            "best-last/video/best|best-last/audio/best|");
  EXPECT_EQ(best.verdict, NegotiationStatus::kSucceeded);
  // The eager cap dropped it, so the eager walk committed something worse —
  // and the truncation was reported, not silent.
  EXPECT_NE(signature(truncated.offers.offers[truncated.committed_index]),
            "best-last/video/best|best-last/audio/best|");
  ASSERT_FALSE(truncated.problems.empty());
  EXPECT_NE(truncated.problems[0].find("truncated"), std::string::npos);
  // Both sides flag the truncation; under best-first the capped set is still
  // the *best* 10 of the 24, so the defect is gone even though the flag stays.
  EXPECT_TRUE(truncated.offers.truncated);
  EXPECT_TRUE(best.offers.truncated);
  ASSERT_FALSE(best.problems.empty());
  EXPECT_NE(best.problems[0].find("truncated"), std::string::npos);
}

// --- Adaptation must pull past the initially-consumed prefix. --------------

TEST(OfferStreamAdaptation, LadderMarchMatchesEagerUnderExcludeAllTried) {
  TestSystem eager_sys;
  TestSystem lazy_sys;
  QoSManager eager(eager_sys.catalog, eager_sys.farm, *eager_sys.transport, CostModel{},
                   strategy_config(EnumerationStrategy::kEager));
  QoSManager lazy(lazy_sys.catalog, lazy_sys.farm, *lazy_sys.transport, CostModel{},
                  strategy_config(EnumerationStrategy::kBestFirst));
  const UserProfile profile = TestSystem::tolerant_profile();
  NegotiationResult a = eager.negotiate(make_negotiation_request(eager_sys.client, "article", profile));
  NegotiationResult b = lazy.negotiate(make_negotiation_request(lazy_sys.client, "article", profile));
  ASSERT_TRUE(a.has_commitment());
  ASSERT_TRUE(b.has_commitment());
  // The lazy negotiation consumed only a prefix; the ladder is still known
  // in full through the stream.
  ASSERT_LT(b.offers.offers.size(), b.offers.known_count());
  EXPECT_EQ(b.offers.known_count(), a.offers.offers.size());

  const AdaptationPolicy policy{.make_before_break = false,
                                .exclude_all_tried = true,
                                .transition_latency_s = 0.5};
  SessionManager eager_sessions(eager, policy);
  SessionManager lazy_sessions(lazy, policy);
  auto ea = eager_sessions.open(eager_sys.client, profile, std::move(a), 0.0);
  auto la = lazy_sessions.open(lazy_sys.client, profile, std::move(b), 0.0);
  ASSERT_TRUE(ea.ok());
  ASSERT_TRUE(la.ok());
  ASSERT_TRUE(eager_sessions.confirm(ea.value(), 1.0).ok());
  ASSERT_TRUE(lazy_sessions.confirm(la.value(), 1.0).ok());

  // March both sessions down the ladder until adaptation aborts them; every
  // step must land on the same rung — the lazy side fetching rungs from the
  // stream the negotiation never materialised.
  for (int step = 0;; ++step) {
    ASSERT_LT(step, 64) << "ladder march did not terminate";
    const AdaptationResult ra = eager_sessions.adapt(ea.value(), 5.0 + step);
    const AdaptationResult rb = lazy_sessions.adapt(la.value(), 5.0 + step);
    EXPECT_EQ(ra.adapted, rb.adapted) << "step " << step;
    EXPECT_EQ(ra.new_offer, rb.new_offer) << "step " << step;
    EXPECT_EQ(ra.errors, rb.errors) << "step " << step;
    if (!ra.adapted || !rb.adapted) break;
  }
  EXPECT_EQ(eager_sessions.snapshot(ea.value())->state, SessionState::kAborted);
  EXPECT_EQ(lazy_sessions.snapshot(la.value())->state, SessionState::kAborted);
}

TEST(OfferStreamAdaptation, FaultedCommitWalkMatchesEagerAndFetchesDeeper) {
  // Transient commit refusals force the Step-5 walk deep into the ladder on
  // the very first negotiation: the lazy side must fetch exactly as far as
  // the eager side walks, and produce the identical error trail.
  auto run = [](EnumerationStrategy strategy) {
    TestSystem sys;
    FaultPlan plan;
    plan.seed = 99;
    plan.server_defaults.transient_failure_p = 0.6;
    plan.transport_defaults.transient_failure_p = 0.3;
    FaultyServerFarm farm(sys.farm, plan);
    FaultyTransportProvider transport(*sys.transport, plan);
    QoSManager manager(sys.catalog, farm, transport, CostModel{}, strategy_config(strategy));
    const UserProfile profile = TestSystem::tolerant_profile();
    NegotiationResult outcome = manager.negotiate(make_negotiation_request(sys.client, "article", profile));
    return std::tuple{outcome.verdict, outcome.committed_index, outcome.problems,
                      outcome.commit_stats.attempts, outcome.commit_stats.transient_failures,
                      outcome.offers.offers.size()};
  };
  const auto eager = run(EnumerationStrategy::kEager);
  auto lazy = run(EnumerationStrategy::kBestFirst);
  EXPECT_EQ(std::get<0>(eager), std::get<0>(lazy));
  EXPECT_EQ(std::get<1>(eager), std::get<1>(lazy));
  EXPECT_EQ(std::get<2>(eager), std::get<2>(lazy));
  EXPECT_EQ(std::get<3>(eager), std::get<3>(lazy));
  EXPECT_EQ(std::get<4>(eager), std::get<4>(lazy));
  // Eager materialised all 20; lazy only what the faulted walk touched.
  EXPECT_EQ(std::get<5>(eager), 20u);
  EXPECT_LE(std::get<5>(lazy), 20u);
}

// --- Laziness is observable, not just hoped for. ---------------------------

TEST(OfferStreamLaziness, NegotiationMaterialisesOnlyTheWalkedPrefix) {
  TestSystem sys;
  QoSManager manager(sys.catalog, sys.farm, *sys.transport, CostModel{},
                     strategy_config(EnumerationStrategy::kBestFirst));
  const UserProfile profile = TestSystem::tolerant_profile();
  NegotiationResult outcome = manager.negotiate(make_negotiation_request(sys.client, "article", profile));
  ASSERT_TRUE(outcome.has_commitment());
  EXPECT_EQ(outcome.offers.known_count(), 20u);
  // The first offer commits, so the walk needed at most a couple of fetches.
  EXPECT_LE(outcome.offers.offers.size(), 3u);
  ASSERT_NE(outcome.offers.stream, nullptr);
  // The stream scored a frontier, not the product.
  EXPECT_LT(outcome.offers.stream->states_generated(), 20u * 3u);
}

}  // namespace
}  // namespace qosnp
