#include "core/enumerate.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "test_system.hpp"

namespace qosnp {
namespace {

using testing::TestSystem;

TEST(Enumerate, CompatibleVariantsFiltersByDecoder) {
  TestSystem sys;
  auto doc = sys.catalog.find("article");
  const UserProfile profile = TestSystem::tolerant_profile();
  // A client that cannot decode MJPEG loses exactly that variant.
  ClientMachine limited = sys.client;
  limited.decoders = {CodingFormat::kMPEG1, CodingFormat::kPCM, CodingFormat::kADPCM,
                      CodingFormat::kPlainText};
  auto feasible = compatible_variants(doc, limited, profile.mm);
  ASSERT_TRUE(feasible.ok()) << feasible.error();
  ASSERT_EQ(feasible.value().monomedia.size(), 3u);
  EXPECT_EQ(feasible.value().variants[0].size(), 4u);  // 5 video variants - MJPEG
  for (const Variant* v : feasible.value().variants[0]) {
    EXPECT_NE(v->format, CodingFormat::kMJPEG);
  }
}

TEST(Enumerate, NoDecodableVariantFailsWithMonomediaName) {
  TestSystem sys;
  auto doc = sys.catalog.find("article");
  ClientMachine mpeg2_only = sys.client;
  mpeg2_only.decoders = {CodingFormat::kMPEG2, CodingFormat::kPCM, CodingFormat::kPlainText};
  auto feasible = compatible_variants(doc, mpeg2_only, TestSystem::tolerant_profile().mm);
  ASSERT_FALSE(feasible.ok());
  EXPECT_NE(feasible.error().find("article/video"), std::string::npos);
}

TEST(Enumerate, UnrequestedMediaAreSkipped) {
  TestSystem sys;
  auto doc = sys.catalog.find("article");
  UserProfile video_only = TestSystem::tolerant_profile();
  video_only.mm.audio.reset();
  video_only.mm.text.reset();
  auto feasible = compatible_variants(doc, sys.client, video_only.mm);
  ASSERT_TRUE(feasible.ok());
  EXPECT_EQ(feasible.value().monomedia.size(), 1u);
  EXPECT_EQ(feasible.value().monomedia[0]->kind, MediaKind::kVideo);
}

TEST(Enumerate, RequestingNothingPresentFails) {
  TestSystem sys;
  auto doc = sys.catalog.find("article");
  UserProfile image_only;
  image_only.name = "image-only";
  image_only.mm.image = ImageProfile{};
  auto feasible = compatible_variants(doc, sys.client, image_only.mm);
  EXPECT_FALSE(feasible.ok());  // the article carries no image
}

TEST(Enumerate, CombinationCountIsProduct) {
  TestSystem sys;
  auto doc = sys.catalog.find("article");
  auto feasible = compatible_variants(doc, sys.client, TestSystem::tolerant_profile().mm);
  ASSERT_TRUE(feasible.ok());
  EXPECT_EQ(feasible.value().combination_count(), 5u * 2u * 2u);
}

TEST(Enumerate, EnumeratesAllCombinationsDistinctly) {
  TestSystem sys;
  auto doc = sys.catalog.find("article");
  const UserProfile profile = TestSystem::tolerant_profile();
  auto feasible = compatible_variants(doc, sys.client, profile.mm);
  ASSERT_TRUE(feasible.ok());
  const OfferList list = enumerate_offers(feasible.value(), profile.mm, CostModel{});
  EXPECT_EQ(list.offers.size(), 20u);
  EXPECT_FALSE(list.truncated);
  EXPECT_EQ(list.total_combinations, 20u);
  std::set<std::string> signatures;
  for (const SystemOffer& o : list.offers) {
    ASSERT_EQ(o.components.size(), 3u);
    std::string sig;
    for (const auto& c : o.components) sig += c.variant->id + "|";
    signatures.insert(sig);
  }
  EXPECT_EQ(signatures.size(), 20u);
}

TEST(Enumerate, EveryOfferIsPricedByFormulaOne) {
  TestSystem sys;
  auto doc = sys.catalog.find("article");
  const UserProfile profile = TestSystem::tolerant_profile();
  auto feasible = compatible_variants(doc, sys.client, profile.mm);
  ASSERT_TRUE(feasible.ok());
  const CostModel model;
  const OfferList list = enumerate_offers(feasible.value(), profile.mm, model);
  for (const SystemOffer& o : list.offers) {
    std::vector<StreamRequirements> streams;
    for (const auto& c : o.components) streams.push_back(c.requirements);
    const CostBreakdown expected = model.document_cost(doc->copyright_cost, streams);
    EXPECT_EQ(o.cost.total, expected.total);
    EXPECT_EQ(o.cost.copyright, doc->copyright_cost);
  }
}

TEST(Enumerate, TruncationIsExplicit) {
  TestSystem sys;
  auto doc = sys.catalog.find("article");
  const UserProfile profile = TestSystem::tolerant_profile();
  auto feasible = compatible_variants(doc, sys.client, profile.mm);
  ASSERT_TRUE(feasible.ok());
  EnumerationConfig config;
  config.max_offers = 7;
  const OfferList list = enumerate_offers(feasible.value(), profile.mm, CostModel{}, config);
  EXPECT_EQ(list.offers.size(), 7u);
  EXPECT_TRUE(list.truncated);
  EXPECT_EQ(list.total_combinations, 20u);
}

TEST(Enumerate, StreamRequirementsMatchMapping) {
  TestSystem sys;
  auto doc = sys.catalog.find("article");
  const UserProfile profile = TestSystem::tolerant_profile();
  auto feasible = compatible_variants(doc, sys.client, profile.mm);
  ASSERT_TRUE(feasible.ok());
  const OfferList list = enumerate_offers(feasible.value(), profile.mm, CostModel{});
  for (const SystemOffer& o : list.offers) {
    for (const auto& c : o.components) {
      const StreamRequirements expected =
          map_variant(*c.variant, c.monomedia->duration_s, profile.mm.time);
      EXPECT_EQ(c.requirements.max_bit_rate_bps, expected.max_bit_rate_bps);
      EXPECT_EQ(c.requirements.avg_bit_rate_bps, expected.avg_bit_rate_bps);
      EXPECT_EQ(c.requirements.guarantee, expected.guarantee);
    }
  }
}

TEST(Prune, QosDominatesIsPerMedium) {
  EXPECT_TRUE(qos_dominates(MonomediaQoS{VideoQoS{ColorDepth::kColor, 25, 640}},
                            MonomediaQoS{VideoQoS{ColorDepth::kGray, 15, 320}}));
  EXPECT_FALSE(qos_dominates(MonomediaQoS{VideoQoS{ColorDepth::kGray, 25, 640}},
                             MonomediaQoS{VideoQoS{ColorDepth::kColor, 15, 320}}));
  EXPECT_FALSE(qos_dominates(MonomediaQoS{VideoQoS{}}, MonomediaQoS{AudioQoS{}}));
  EXPECT_TRUE(qos_dominates(MonomediaQoS{TextQoS{Language::kFrench}},
                            MonomediaQoS{TextQoS{Language::kFrench}}));
  EXPECT_FALSE(qos_dominates(MonomediaQoS{TextQoS{Language::kFrench}},
                             MonomediaQoS{TextQoS{Language::kEnglish}}));
}

TEST(Prune, DropsStrictlyWorseSameServerVariant) {
  // An MJPEG variant with identical QoS but larger blocks than the MPEG-1
  // variant on the same server can never be the better choice.
  MultimediaDocument doc;
  doc.id = "p";
  Monomedia video;
  video.id = "p/video";
  video.kind = MediaKind::kVideo;
  video.duration_s = 60.0;
  const VideoQoS qos{ColorDepth::kColor, 25, 640};
  video.variants = {
      make_video_variant("p/video/mpeg", qos, CodingFormat::kMPEG1, 60.0, "server-a"),
      make_video_variant("p/video/mjpeg", qos, CodingFormat::kMJPEG, 60.0, "server-a"),
  };
  doc.monomedia.push_back(std::move(video));
  auto shared = std::make_shared<const MultimediaDocument>(std::move(doc));

  TestSystem sys;
  UserProfile profile = TestSystem::tolerant_profile();
  profile.mm.audio.reset();
  profile.mm.text.reset();
  auto feasible = compatible_variants(shared, sys.client, profile.mm);
  ASSERT_TRUE(feasible.ok());
  ASSERT_EQ(feasible.value().variants[0].size(), 2u);
  const std::size_t dropped = prune_dominated_variants(feasible.value());
  EXPECT_EQ(dropped, 1u);
  ASSERT_EQ(feasible.value().variants[0].size(), 1u);
  EXPECT_EQ(feasible.value().variants[0][0]->id, "p/video/mpeg");
}

TEST(Prune, KeepsCrossServerReplicasAndOneOfTiedPair) {
  MultimediaDocument doc;
  doc.id = "p2";
  Monomedia video;
  video.id = "p2/video";
  video.kind = MediaKind::kVideo;
  video.duration_s = 60.0;
  const VideoQoS qos{ColorDepth::kColor, 25, 640};
  video.variants = {
      make_video_variant("p2/video/a", qos, CodingFormat::kMPEG1, 60.0, "server-a"),
      make_video_variant("p2/video/b", qos, CodingFormat::kMPEG1, 60.0, "server-b"),
      make_video_variant("p2/video/a2", qos, CodingFormat::kMPEG1, 60.0, "server-a"),
  };
  doc.monomedia.push_back(std::move(video));
  auto shared = std::make_shared<const MultimediaDocument>(std::move(doc));

  TestSystem sys;
  UserProfile profile = TestSystem::tolerant_profile();
  profile.mm.audio.reset();
  profile.mm.text.reset();
  auto feasible = compatible_variants(shared, sys.client, profile.mm);
  ASSERT_TRUE(feasible.ok());
  // The same-server exact duplicate is dropped, the cross-server replica kept.
  EXPECT_EQ(prune_dominated_variants(feasible.value()), 1u);
  ASSERT_EQ(feasible.value().variants[0].size(), 2u);
  EXPECT_EQ(feasible.value().variants[0][0]->id, "p2/video/a");
  EXPECT_EQ(feasible.value().variants[0][1]->id, "p2/video/b");
}

TEST(Prune, NeverDropsTheOnlyVariant) {
  TestSystem sys;
  auto doc = sys.catalog.find("article");
  const UserProfile profile = TestSystem::tolerant_profile();
  auto feasible = compatible_variants(doc, sys.client, profile.mm);
  ASSERT_TRUE(feasible.ok());
  prune_dominated_variants(feasible.value());
  for (const auto& vs : feasible.value().variants) {
    EXPECT_FALSE(vs.empty());
  }
}

TEST(Prune, BestCommittedOfferUnchangedByPruning) {
  // Pruning must not change which offer the negotiation commits.
  TestSystem sys_plain;
  TestSystem sys_pruned;
  NegotiationConfig pruned_config;
  pruned_config.enumeration.prune_dominated = true;
  QoSManager plain(sys_plain.catalog, sys_plain.farm, *sys_plain.transport);
  QoSManager pruned(sys_pruned.catalog, sys_pruned.farm, *sys_pruned.transport, CostModel{},
                    pruned_config);
  const UserProfile profile = TestSystem::tolerant_profile();
  NegotiationResult a = plain.negotiate(make_negotiation_request(sys_plain.client, "article", profile));
  NegotiationResult b = pruned.negotiate(make_negotiation_request(sys_pruned.client, "article", profile));
  ASSERT_TRUE(a.has_commitment());
  ASSERT_TRUE(b.has_commitment());
  ASSERT_EQ(a.verdict, b.verdict);
  const auto& ca = a.offers.offers[a.committed_index].components;
  const auto& cb = b.offers.offers[b.committed_index].components;
  ASSERT_EQ(ca.size(), cb.size());
  for (std::size_t i = 0; i < ca.size(); ++i) {
    EXPECT_EQ(ca[i].variant->qos, cb[i].variant->qos);
  }
}

TEST(Enumerate, NullDocumentFails) {
  TestSystem sys;
  auto feasible = compatible_variants(nullptr, sys.client, TestSystem::tolerant_profile().mm);
  EXPECT_FALSE(feasible.ok());
}

// --- Property tests over generated corpora. --------------------------------

TEST(PruneProperty, NeverEmptiesAnyFeasibleListAcrossCorpora) {
  TestSystem sys;
  const UserProfile profile = TestSystem::tolerant_profile();
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    CorpusConfig corpus;
    corpus.seed = seed;
    corpus.num_documents = 4;
    corpus.servers = {"server-a", "server-b"};
    for (auto& raw : generate_corpus(corpus)) {
      auto doc = std::make_shared<const MultimediaDocument>(std::move(raw));
      auto feasible = compatible_variants(doc, sys.client, profile.mm);
      if (!feasible.ok()) continue;  // corpus may generate undecodable docs
      prune_dominated_variants(feasible.value());
      for (std::size_t i = 0; i < feasible.value().variants.size(); ++i) {
        EXPECT_FALSE(feasible.value().variants[i].empty())
            << "seed " << seed << " doc " << doc->id << " monomedia "
            << feasible.value().monomedia[i]->id;
      }
    }
  }
}

TEST(PruneProperty, HeadOfClassifiedOrderSurvivesDominationWise) {
  // Pruning may drop a variant of the best-classified offer only when a
  // same-server variant with dominating QoS survives — the head of the
  // order never silently loses quality.
  TestSystem sys;
  const UserProfile profile = TestSystem::tolerant_profile();
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    CorpusConfig corpus;
    corpus.seed = seed;
    corpus.num_documents = 4;
    corpus.servers = {"server-a", "server-b"};
    for (auto& raw : generate_corpus(corpus)) {
      auto doc = std::make_shared<const MultimediaDocument>(std::move(raw));
      auto feasible = compatible_variants(doc, sys.client, profile.mm);
      if (!feasible.ok()) continue;
      OfferList list = enumerate_offers(feasible.value(), profile.mm, CostModel{});
      if (list.offers.empty()) continue;
      classify_offers(list.offers, profile.mm, profile.importance);
      const SystemOffer& head = list.offers.front();

      prune_dominated_variants(feasible.value());
      for (const OfferComponent& c : head.components) {
        // Locate this component's feasible list after pruning.
        const std::vector<const Variant*>* survivors = nullptr;
        for (std::size_t i = 0; i < feasible.value().monomedia.size(); ++i) {
          if (feasible.value().monomedia[i] == c.monomedia) {
            survivors = &feasible.value().variants[i];
            break;
          }
        }
        ASSERT_NE(survivors, nullptr);
        bool covered = false;
        for (const Variant* v : *survivors) {
          if (v == c.variant ||
              (v->server == c.variant->server && qos_dominates(v->qos, c.variant->qos))) {
            covered = true;
            break;
          }
        }
        EXPECT_TRUE(covered) << "seed " << seed << " doc " << doc->id << " variant "
                             << c.variant->id << " lost without a dominating survivor";
      }
    }
  }
}

TEST(CombinationCount, SaturatesAtSizeMaxInsteadOfOverflowing) {
  // Four monomedia with 2^16 feasible variants each: the true product is
  // 2^64, one past SIZE_MAX — the count must clamp, not wrap to 0.
  FeasibleSet huge;
  huge.monomedia.assign(4, nullptr);
  huge.variants.assign(4, std::vector<const Variant*>(1u << 16, nullptr));
  EXPECT_EQ(huge.combination_count(), SIZE_MAX);

  // One variant short of the cliff stays exact.
  FeasibleSet large;
  large.monomedia.assign(3, nullptr);
  large.variants.assign(3, std::vector<const Variant*>(1u << 16, nullptr));
  EXPECT_EQ(large.combination_count(), std::size_t{1} << 48);

  // Any empty list zeroes the product regardless of the other factors.
  FeasibleSet with_empty = std::move(huge);
  with_empty.variants[2].clear();
  EXPECT_EQ(with_empty.combination_count(), 0u);
}

/// A document of `media` text monomedia, each with an English and a French
/// variant — a real (materialisable) document whose product is 2^media.
std::shared_ptr<const MultimediaDocument> power_of_two_document(std::size_t media) {
  MultimediaDocument doc;
  doc.id = "pow2";
  doc.copyright_cost = Money::cents(10);
  for (std::size_t i = 0; i < media; ++i) {
    Monomedia text;
    text.id = "pow2/text" + std::to_string(i);
    text.kind = MediaKind::kText;
    text.variants = {
        make_text_variant(text.id + "/en", Language::kEnglish, CodingFormat::kPlainText, 4'000,
                          "server-a"),
        make_text_variant(text.id + "/fr", Language::kFrench, CodingFormat::kPlainText, 4'000,
                          "server-b"),
    };
    doc.monomedia.push_back(std::move(text));
  }
  return std::make_shared<const MultimediaDocument>(std::move(doc));
}

TEST(CombinationCount, SixtyFourMediaCorpusSaturatesEverywhere) {
  // 64 media x 2 variants: the true product is 2^64, one past SIZE_MAX.
  // Every consumer of the count — the feasible set, the eager enumerator's
  // total, and the stream's total — must see the saturated value, and the
  // eager cap arithmetic must not wrap.
  TestSystem sys;
  auto doc = power_of_two_document(64);
  UserProfile profile;
  profile.mm.video.reset();
  profile.mm.audio.reset();
  profile.mm.image.reset();
  profile.mm.text = TextProfile{};
  profile.mm.text->acceptable = {Language::kFrench};
  auto feasible = compatible_variants(doc, sys.client, profile.mm);
  ASSERT_TRUE(feasible.ok());
  EXPECT_EQ(feasible.value().combination_count(), SIZE_MAX);

  EnumerationConfig config;
  config.max_offers = 4;
  config.strategy = EnumerationStrategy::kEager;
  const OfferList list = enumerate_offers(feasible.value(), profile.mm, CostModel{}, config);
  EXPECT_EQ(list.total_combinations, SIZE_MAX);
  EXPECT_TRUE(list.truncated);
  EXPECT_EQ(list.offers.size(), 4u);

  OfferStream stream(feasible.value(), profile.mm, profile.importance, CostModel{},
                     ClassificationPolicy{}, 4);
  EXPECT_EQ(stream.total_combinations(), SIZE_MAX);
  EXPECT_EQ(stream.emit_limit(), 4u);
}

TEST(OfferStream, PullsFromAnAstronomicalProductWithoutEnumeratingIt) {
  // The same 2^64-combination document: the stream must yield its best
  // offers instantly, scoring only a frontier of states — this is the whole
  // point of laziness, and would OOM (or never finish) eagerly uncapped.
  TestSystem sys;
  auto doc = power_of_two_document(64);
  UserProfile profile;
  profile.mm.video.reset();
  profile.mm.audio.reset();
  profile.mm.image.reset();
  profile.mm.text = TextProfile{};
  profile.mm.text->acceptable = {Language::kFrench};
  profile.mm.cost.max_cost = Money::dollars(100);
  auto feasible = compatible_variants(doc, sys.client, profile.mm);
  ASSERT_TRUE(feasible.ok());
  OfferStream stream(std::move(feasible.value()), profile.mm, profile.importance, CostModel{},
                     ClassificationPolicy{}, 8);
  // The very best offer: the desired (English) variant of all 64 texts.
  auto best = stream.next();
  ASSERT_TRUE(best.has_value());
  ASSERT_EQ(best->components.size(), 64u);
  for (const OfferComponent& c : best->components) {
    EXPECT_EQ(c.variant->id.substr(c.variant->id.size() - 3), "/en");
  }
  EXPECT_EQ(best->sns, Sns::kDesirable);
  for (int i = 1; i < 8; ++i) {
    EXPECT_TRUE(stream.next().has_value()) << "offer " << i;
  }
  EXPECT_FALSE(stream.next().has_value());
  // Work scales with offers consumed x positions (each pop expands at most
  // one successor per position, plus one root per sub-space cursor) — a few
  // thousand states, not the 2^64 product.
  EXPECT_LT(stream.states_generated(), 8u * 64u * 8u);
}

}  // namespace
}  // namespace qosnp
