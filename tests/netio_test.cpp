// Loopback end-to-end suite for the wire server: a real qosnpd on an
// ephemeral 127.0.0.1 port, driven by real sockets. Covers the behaviour
// contract in netio/server.hpp:
//   - loopback results are byte-identical (result signature) to in-process
//     submits against a twin system;
//   - pipelined requests resolve by sequence number, in any await order;
//   - concurrent clients all get answers and the system drains;
//   - a 1-byte-at-a-time writer reassembles;
//   - malformed input is answered with typed ERROR frames (framing
//     violations close the connection, payload violations keep it open);
//   - overload (max connections) and oversized frames shed, idle
//     connections reap, ping answers pong;
//   - the population simulation over a WirePopulationBackend is
//     byte-identical to the in-process service backend;
//   - qosnp_net_* conservation laws balance after every scenario,
//     server-stop-with-inflight included.
#include "netio/server.hpp"

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "document/corpus.hpp"
#include "netio/client.hpp"
#include "result_signature.hpp"
#include "service/service_backend.hpp"
#include "sim/remote_backend.hpp"
#include "test_service.hpp"
#include "wire/codec.hpp"

namespace qosnp {
namespace {

using testing::ServiceSystem;
using testing::TestSystem;
using testing::result_signature;
using wire::Bytes;
using wire::FrameType;
using wire::WireErrorCode;

/// Full loopback stack: shared system, running service, running server.
struct WireFixture {
  ServiceSystem sys;
  MetricsRegistry registry;
  std::unique_ptr<NegotiationService> service;
  std::unique_ptr<WireServer> server;

  explicit WireFixture(WireServerConfig net = {}, ServiceConfig svc = {}) : sys(8) {
    svc.metrics = &registry;
    service = std::make_unique<NegotiationService>(*sys.manager, *sys.sessions, svc);
    service->start();
    net.metrics = &registry;
    server = std::make_unique<WireServer>(*service, net);
    server->start();
  }

  ~WireFixture() {
    server->stop();
    service->stop();
  }

  WireClientConfig client_config() const {
    WireClientConfig config;
    config.port = server->port();
    config.deadline_ms = 20'000.0;
    return config;
  }

  NegotiationRequest request(std::uint64_t id) const {
    NegotiationRequest req;
    req.id = id;
    req.client = sys.clients[id % sys.clients.size()];
    req.document = "article";
    req.profile = TestSystem::tolerant_profile();
    return req;
  }
};

// --- raw-socket helpers (the misbehaving clients WireClient refuses to be) --

int raw_connect(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  EXPECT_EQ(::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)), 0)
      << std::strerror(errno);
  return fd;
}

void raw_send(int fd, const Bytes& bytes, std::size_t chunk = SIZE_MAX) {
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    const std::size_t n = std::min(chunk, bytes.size() - sent);
    ASSERT_EQ(::send(fd, bytes.data() + sent, n, MSG_NOSIGNAL), static_cast<ssize_t>(n));
    sent += n;
  }
}

/// Read one frame (5s budget). Fails the test on timeout or EOF.
wire::Frame raw_read_frame(int fd, wire::FrameAssembler& assembler) {
  for (int rounds = 0; rounds < 500; ++rounds) {
    wire::FrameAssembler::Next next = assembler.next();
    EXPECT_FALSE(next.error.has_value()) << next.error->to_text();
    if (next.frame) return std::move(*next.frame);
    pollfd pfd{fd, POLLIN, 0};
    if (::poll(&pfd, 1, 5000) <= 0) break;
    std::uint8_t buf[4096];
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    assembler.feed(buf, static_cast<std::size_t>(n));
  }
  ADD_FAILURE() << "no frame arrived";
  return {};
}

/// True when the peer closes the connection within 5 seconds.
bool raw_wait_eof(int fd) {
  for (int rounds = 0; rounds < 500; ++rounds) {
    pollfd pfd{fd, POLLIN, 0};
    if (::poll(&pfd, 1, 5000) <= 0) return false;
    std::uint8_t buf[4096];
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n == 0) return true;
    if (n < 0) return errno != EINTR && errno != EAGAIN;
  }
  return false;
}

// --- scenarios ------------------------------------------------------------

TEST(WireServerLoopback, ResultsAreByteIdenticalToInProcessSubmits) {
  ServiceSystem twin_sys(8);
  NegotiationService twin(*twin_sys.manager, *twin_sys.sessions, {});
  twin.start();

  WireFixture fx;
  WireClient client(fx.client_config());
  for (std::uint64_t i = 0; i < 24; ++i) {
    auto over_wire = client.submit(fx.request(i));
    ASSERT_TRUE(over_wire.ok()) << over_wire.error().to_text();
    const NegotiationResult in_process = twin.submit(fx.request(i)).get();
    EXPECT_EQ(result_signature(over_wire.value()), result_signature(in_process)) << "i=" << i;
    EXPECT_EQ(over_wire.value().request_id, i);
    EXPECT_GE(over_wire.value().worker, 0);
    if (over_wire.value().session_id != 0) fx.sys.sessions->complete(over_wire.value().session_id);
    if (in_process.session_id != 0) twin_sys.sessions->complete(in_process.session_id);
  }
  twin.stop();
  client.close();
  fx.server->stop();
  EXPECT_TRUE(fx.server->net().balanced());
  EXPECT_TRUE(fx.sys.drained());
  EXPECT_TRUE(twin_sys.drained());
}

TEST(WireServerLoopback, PipelinedRequestsResolveBySequenceInAnyOrder) {
  WireFixture fx;
  WireClient client(fx.client_config());
  std::vector<std::pair<std::uint64_t, std::uint64_t>> sent;  // (seq, request id)
  for (std::uint64_t i = 0; i < 32; ++i) {
    auto seq = client.send(fx.request(1000 + i));
    ASSERT_TRUE(seq.ok()) << seq.error().to_text();
    sent.emplace_back(seq.value(), 1000 + i);
  }
  // Await newest-first: every response must land on its own sequence.
  for (auto it = sent.rbegin(); it != sent.rend(); ++it) {
    auto result = client.await(it->first);
    ASSERT_TRUE(result.ok()) << result.error().to_text();
    EXPECT_EQ(result.value().request_id, it->second);
    if (result.value().session_id != 0) fx.sys.sessions->complete(result.value().session_id);
  }
  client.close();
  fx.server->stop();
  EXPECT_EQ(fx.server->net().requests_rx->value(), 32u);
  EXPECT_TRUE(fx.server->net().balanced());
  EXPECT_TRUE(fx.sys.drained());
}

TEST(WireServerLoopback, ConcurrentClientsAllDrainCleanly) {
  WireFixture fx;
  constexpr int kClients = 6;
  constexpr int kPerClient = 16;
  std::mutex mu;
  std::vector<SessionId> opened;
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int t = 0; t < kClients; ++t) {
    threads.emplace_back([&, t] {
      WireClient client(fx.client_config());
      for (int i = 0; i < kPerClient; ++i) {
        auto result = client.submit(fx.request(static_cast<std::uint64_t>(t * 1000 + i)));
        if (!result.ok()) {
          ++failures;
          continue;
        }
        if (result.value().session_id != 0) {
          std::lock_guard<std::mutex> lock(mu);
          opened.push_back(result.value().session_id);
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(failures.load(), 0);
  for (SessionId id : opened) fx.sys.sessions->complete(id);
  fx.server->stop();
  EXPECT_EQ(fx.server->net().requests_rx->value(),
            static_cast<std::uint64_t>(kClients * kPerClient));
  EXPECT_TRUE(fx.server->net().balanced());
  EXPECT_TRUE(fx.sys.drained());
}

TEST(WireServerLoopback, OneByteAtATimeWriterIsReassembled) {
  WireFixture fx;
  const int fd = raw_connect(fx.server->port());
  const Bytes frame = wire::encode_request_frame(fx.request(7), /*seq=*/9).value();
  raw_send(fd, frame, /*chunk=*/1);
  wire::FrameAssembler assembler(wire::kDefaultMaxFrameBytes);
  const wire::Frame reply = raw_read_frame(fd, assembler);
  EXPECT_EQ(reply.type, FrameType::kResult);
  EXPECT_EQ(reply.seq, 9u);
  auto result = wire::decode_result_payload(reply.payload);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().request_id, 7u);
  if (result.value().session_id != 0) fx.sys.sessions->complete(result.value().session_id);
  ::close(fd);
  fx.server->stop();
  EXPECT_TRUE(fx.server->net().balanced());
  EXPECT_TRUE(fx.sys.drained());
}

TEST(WireServerLoopback, MalformedPayloadAnswersTypedErrorAndKeepsConnection) {
  WireFixture fx;
  const int fd = raw_connect(fx.server->port());
  // Valid framing + CRC around a garbage REQUEST payload.
  const Bytes garbage_payload{0xDE, 0xAD, 0xBE, 0xEF};
  raw_send(fd, wire::encode_frame(FrameType::kRequest, /*seq=*/3, garbage_payload));
  wire::FrameAssembler assembler(wire::kDefaultMaxFrameBytes);
  const wire::Frame error_frame = raw_read_frame(fd, assembler);
  EXPECT_EQ(error_frame.type, FrameType::kError);
  EXPECT_EQ(error_frame.seq, 3u);
  auto decoded_error = wire::decode_error_payload(error_frame.payload);
  ASSERT_TRUE(decoded_error.ok());
  EXPECT_EQ(decoded_error.value().code, WireErrorCode::kBadPayload);

  // The framing survived, so the connection must still serve real requests.
  raw_send(fd, wire::encode_request_frame(fx.request(8), /*seq=*/4).value());
  const wire::Frame reply = raw_read_frame(fd, assembler);
  EXPECT_EQ(reply.type, FrameType::kResult);
  EXPECT_EQ(reply.seq, 4u);
  auto result = wire::decode_result_payload(reply.payload);
  ASSERT_TRUE(result.ok());
  if (result.value().session_id != 0) fx.sys.sessions->complete(result.value().session_id);
  ::close(fd);
  fx.server->stop();
  EXPECT_EQ(fx.server->net().decode_errors->value(), 1u);
  EXPECT_TRUE(fx.server->net().balanced());
  EXPECT_TRUE(fx.sys.drained());
}

TEST(WireServerLoopback, BadMagicAnswersTypedErrorThenCloses) {
  WireFixture fx;
  const int fd = raw_connect(fx.server->port());
  Bytes junk(64, 0x55);
  raw_send(fd, junk);
  wire::FrameAssembler assembler(wire::kDefaultMaxFrameBytes);
  const wire::Frame error_frame = raw_read_frame(fd, assembler);
  EXPECT_EQ(error_frame.type, FrameType::kError);
  auto decoded = wire::decode_error_payload(error_frame.payload);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value().code, WireErrorCode::kBadMagic);
  EXPECT_TRUE(raw_wait_eof(fd));
  ::close(fd);
  fx.server->stop();
  EXPECT_EQ(fx.server->net().connections_closed[static_cast<std::size_t>(
                                                    NetCloseReason::kProtocolError)]
                ->value(),
            1u);
  EXPECT_TRUE(fx.server->net().balanced());
}

TEST(WireServerLoopback, CorruptedCrcAnswersTypedErrorThenCloses) {
  WireFixture fx;
  const int fd = raw_connect(fx.server->port());
  Bytes frame = wire::encode_request_frame(fx.request(1), /*seq=*/5).value();
  frame.back() ^= 0xFF;
  raw_send(fd, frame);
  wire::FrameAssembler assembler(wire::kDefaultMaxFrameBytes);
  const wire::Frame error_frame = raw_read_frame(fd, assembler);
  EXPECT_EQ(error_frame.type, FrameType::kError);
  EXPECT_EQ(error_frame.seq, 5u);
  auto decoded = wire::decode_error_payload(error_frame.payload);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value().code, WireErrorCode::kBadCrc);
  EXPECT_TRUE(raw_wait_eof(fd));
  ::close(fd);
  fx.server->stop();
  EXPECT_TRUE(fx.server->net().balanced());
}

TEST(WireServerLoopback, OversizedFrameShedsAndCloses) {
  WireServerConfig net;
  net.max_frame_bytes = 4096;
  WireFixture fx(net);
  const int fd = raw_connect(fx.server->port());
  // A header declaring a payload far beyond the ceiling; body never sent.
  Bytes frame = wire::encode_frame(FrameType::kRequest, /*seq=*/6, Bytes{});
  const std::uint32_t huge = 1u << 20;
  std::memcpy(frame.data() + 16, &huge, sizeof(huge));
  raw_send(fd, frame);
  wire::FrameAssembler assembler(wire::kDefaultMaxFrameBytes);
  const wire::Frame error_frame = raw_read_frame(fd, assembler);
  EXPECT_EQ(error_frame.type, FrameType::kError);
  auto decoded = wire::decode_error_payload(error_frame.payload);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value().code, WireErrorCode::kFrameTooLarge);
  EXPECT_TRUE(raw_wait_eof(fd));
  ::close(fd);
  fx.server->stop();
  EXPECT_EQ(fx.server->net().shed_frame_too_large->value(), 1u);
  EXPECT_TRUE(fx.server->net().balanced());
}

TEST(WireServerLoopback, MaxConnectionsShedsWithOverloadedError) {
  WireServerConfig net;
  net.max_connections = 1;
  WireFixture fx(net);
  WireClient first(fx.client_config());
  ASSERT_TRUE(first.ping().ok());  // occupy the one slot

  WireClient second(fx.client_config());
  auto refused = second.submit(fx.request(1));
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.error().code, WireErrorCode::kOverloaded);
  EXPECT_TRUE(refused.error().try_later());

  first.close();
  second.close();
  fx.server->stop();
  EXPECT_EQ(fx.server->net().shed_overload->value(), 1u);
  EXPECT_EQ(fx.server->net()
                .connections_closed[static_cast<std::size_t>(NetCloseReason::kOverload)]
                ->value(),
            1u);
  EXPECT_TRUE(fx.server->net().balanced());
}

TEST(WireClientDeadline, SilentServerSurfacesDeadlineExceededNotOverloaded) {
  // A listener that accepts and never answers: the client's wait bound must
  // expire as the *typed* kDeadlineExceeded — not kTimeout, and above all
  // not kOverloaded, because a shard router retries overload on another
  // shard but must never retry an expired deadline (the silent server may
  // still be working on the request).
  const int listener = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  ASSERT_GE(listener, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = 0;
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  ASSERT_EQ(::bind(listener, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)), 0);
  ASSERT_EQ(::listen(listener, 1), 0);
  socklen_t len = sizeof(addr);
  ASSERT_EQ(::getsockname(listener, reinterpret_cast<sockaddr*>(&addr), &len), 0);

  ServiceSystem sys(1);
  NegotiationRequest req;
  req.id = 1;
  req.client = sys.clients[0];
  req.document = "article";
  req.profile = TestSystem::tolerant_profile();

  WireClientConfig config;
  config.port = ntohs(addr.sin_port);
  config.deadline_ms = 100.0;
  WireClient client(config);
  auto result = client.submit(req);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().code, WireErrorCode::kDeadlineExceeded);
  EXPECT_FALSE(result.error().try_later());  // only overload invites a retry
  client.close();
  ::close(listener);
}

TEST(WireClientDeadline, OverloadStaysTypedAsTryLater) {
  // The counterpart contract: a shed connection is kOverloaded and DOES
  // invite a retry — the pair of codes a shard router keys its hop on.
  WireServerConfig net;
  net.max_connections = 1;
  WireFixture fx(net);
  WireClient occupant(fx.client_config());
  ASSERT_TRUE(occupant.ping().ok());

  WireClient shed(fx.client_config());
  auto refused = shed.submit(fx.request(2));
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.error().code, WireErrorCode::kOverloaded);
  EXPECT_TRUE(refused.error().try_later());
  EXPECT_NE(refused.error().code, WireErrorCode::kDeadlineExceeded);
  occupant.close();
  shed.close();
  fx.server->stop();
  EXPECT_TRUE(fx.server->net().balanced());
}

TEST(WireServerLoopback, IdleConnectionsAreReaped) {
  WireServerConfig net;
  net.idle_timeout_ms = 50.0;
  WireFixture fx(net);
  const int fd = raw_connect(fx.server->port());
  EXPECT_TRUE(raw_wait_eof(fd));  // reaped without us sending a byte
  ::close(fd);
  fx.server->stop();
  EXPECT_EQ(fx.server->net()
                .connections_closed[static_cast<std::size_t>(NetCloseReason::kIdleTimeout)]
                ->value(),
            1u);
  EXPECT_TRUE(fx.server->net().balanced());
}

TEST(WireServerLoopback, PingAnswersPong) {
  WireFixture fx;
  WireClient client(fx.client_config());
  auto rtt = client.ping();
  ASSERT_TRUE(rtt.ok()) << rtt.error().to_text();
  EXPECT_GE(rtt.value(), 0.0);
  client.close();
  fx.server->stop();
  const std::size_t ping = 3, pong = 4;
  EXPECT_EQ(fx.server->net().frames_rx[ping]->value(), 1u);
  EXPECT_EQ(fx.server->net().frames_tx[pong]->value(), 1u);
  EXPECT_TRUE(fx.server->net().balanced());
}

TEST(WireServerLoopback, StopWithInflightRequestsStaysBalanced) {
  ServiceConfig svc;
  svc.simulated_rtt_ms = 40.0;  // keep requests in flight when we stop
  WireFixture fx({}, svc);
  WireClient client(fx.client_config());
  for (std::uint64_t i = 0; i < 4; ++i) {
    ASSERT_TRUE(client.send(fx.request(i)).ok());
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  fx.server->stop();  // connections die with requests still in the service
  fx.service->stop();
  EXPECT_TRUE(fx.server->net().balanced());
  EXPECT_EQ(fx.server->net().requests_rx->value(),
            fx.server->net().frames_tx[1]->value() +
                fx.server->net().orphaned_results->value());
  // Auto-confirmed sessions opened by in-flight requests still exist; drain.
  for (SessionId id = 1; id <= 64; ++id) {
    if (fx.sys.sessions->snapshot(id)) fx.sys.sessions->complete(id);
  }
  EXPECT_TRUE(fx.sys.drained());
}

// --- population over the wire ---------------------------------------------

TEST(WirePopulation, BackendMatchesInProcessServiceBackend) {
  auto build_system = [](ServiceSystem& sys, std::vector<DocumentId>& documents) {
    CorpusConfig corpus;
    corpus.seed = 7;
    corpus.num_documents = 6;
    corpus.min_duration_s = 30.0;
    corpus.max_duration_s = 120.0;
    for (auto& doc : generate_corpus(corpus)) sys.catalog.add(std::move(doc));
    documents = sys.catalog.list();
  };
  auto population_config = [](const ServiceSystem& sys) {
    PopulationConfig config;
    config.classes = standard_population();
    for (std::size_t i = 0; i < config.classes.size(); ++i) {
      config.classes[i].machine.node = sys.clients[i].node;
    }
    config.duration_s = 60.0;
    config.seed = 13;
    return config;
  };
  ServiceConfig svc;
  svc.workers = 4;
  svc.auto_confirm = false;  // Step 6 belongs to the population

  // In-process twin.
  ServiceSystem direct_sys(3);
  std::vector<DocumentId> direct_documents;
  build_system(direct_sys, direct_documents);
  NegotiationService direct(*direct_sys.manager, *direct_sys.sessions, svc);
  direct.start();
  ServicePopulationBackend direct_backend(direct);
  const PopulationMetrics in_process =
      Population(population_config(direct_sys), direct_backend, direct_documents).run();
  direct.stop();

  // Wire twin: same seed, every negotiation crosses the loopback socket.
  ServiceSystem wire_sys(3);
  std::vector<DocumentId> wire_documents;
  build_system(wire_sys, wire_documents);
  NegotiationService wired(*wire_sys.manager, *wire_sys.sessions, svc);
  wired.start();
  WireServer server(wired);
  server.start();
  WireClientConfig client_config;
  client_config.port = server.port();
  client_config.deadline_ms = 20'000.0;
  WireClient client(client_config);
  WirePopulationBackend wire_backend(client, wired);
  const PopulationMetrics over_wire =
      Population(population_config(wire_sys), wire_backend, wire_documents).run();
  client.close();
  server.stop();
  wired.stop();

  EXPECT_TRUE(in_process.conserved()) << in_process.signature();
  EXPECT_TRUE(over_wire.conserved()) << over_wire.signature();
  EXPECT_EQ(in_process.signature(), over_wire.signature());
  EXPECT_TRUE(server.net().balanced());
  EXPECT_TRUE(direct_sys.drained());
  EXPECT_TRUE(wire_sys.drained());
}

TEST(WirePopulation, BackendRefusesAutoConfirmingService) {
  ServiceSystem sys(1);
  NegotiationService service(*sys.manager, *sys.sessions);  // auto_confirm defaults on
  WireClient client(WireClientConfig{});
  EXPECT_THROW((WirePopulationBackend{client, service}), std::invalid_argument);
}

}  // namespace
}  // namespace qosnp
