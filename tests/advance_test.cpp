// Future reservations ([Haf 96] extension): capacity calendars and the
// advance-booking planner.
#include "advance/calendar.hpp"
#include "advance/planner.hpp"

#include <gtest/gtest.h>

#include "core/classify.hpp"
#include "core/enumerate.hpp"
#include "test_system.hpp"

namespace qosnp {
namespace {

using testing::TestSystem;

TEST(Calendar, BookAndUsage) {
  CapacityCalendar cal(10'000'000);
  auto b = cal.book(4'000'000, 10.0, 20.0);
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(cal.usage_at(15.0), 4'000'000);
  EXPECT_EQ(cal.usage_at(5.0), 0);
  EXPECT_EQ(cal.usage_at(20.0), 0);  // end is exclusive
  EXPECT_TRUE(cal.cancel(b.value()));
  EXPECT_FALSE(cal.cancel(b.value()));
  EXPECT_EQ(cal.usage_at(15.0), 0);
}

TEST(Calendar, PeakUsageOverWindow) {
  CapacityCalendar cal(10'000'000);
  ASSERT_TRUE(cal.book(3'000'000, 0.0, 10.0).ok());
  ASSERT_TRUE(cal.book(4'000'000, 5.0, 15.0).ok());
  EXPECT_EQ(cal.peak_usage(0.0, 20.0), 7'000'000);
  EXPECT_EQ(cal.peak_usage(0.0, 4.0), 3'000'000);
  EXPECT_EQ(cal.peak_usage(11.0, 20.0), 4'000'000);
}

TEST(Calendar, FitsRespectsCapacity) {
  CapacityCalendar cal(10'000'000);
  ASSERT_TRUE(cal.book(6'000'000, 0.0, 100.0).ok());
  EXPECT_TRUE(cal.fits(4'000'000, 0.0, 100.0));
  EXPECT_FALSE(cal.fits(5'000'000, 0.0, 100.0));
  EXPECT_TRUE(cal.fits(10'000'000, 100.0, 200.0));  // after the booking
  EXPECT_FALSE(cal.fits(0, 0.0, 1.0));
  EXPECT_FALSE(cal.fits(1, 5.0, 5.0));  // empty window
}

TEST(Calendar, BookRejectsOverCommit) {
  CapacityCalendar cal(10'000'000);
  ASSERT_TRUE(cal.book(8'000'000, 0.0, 50.0).ok());
  EXPECT_FALSE(cal.book(3'000'000, 25.0, 75.0).ok());
  EXPECT_TRUE(cal.book(3'000'000, 50.0, 75.0).ok());
}

TEST(Calendar, EarliestFitSkipsToBookingEnds) {
  CapacityCalendar cal(10'000'000);
  ASSERT_TRUE(cal.book(8'000'000, 0.0, 30.0).ok());
  ASSERT_TRUE(cal.book(8'000'000, 40.0, 60.0).ok());
  // A 5 Mbit/s booking of 10s: doesn't fit at 0, fits at 30 (gap 30..40).
  auto t = cal.earliest_fit(5'000'000, 10.0, 0.0, 1'000.0);
  ASSERT_TRUE(t.has_value());
  EXPECT_DOUBLE_EQ(*t, 30.0);
  // A 15s booking doesn't fit in the gap; earliest is 60.
  t = cal.earliest_fit(5'000'000, 15.0, 0.0, 1'000.0);
  ASSERT_TRUE(t.has_value());
  EXPECT_DOUBLE_EQ(*t, 60.0);
  // Beyond the horizon: no fit.
  EXPECT_FALSE(cal.earliest_fit(5'000'000, 15.0, 0.0, 50.0).has_value());
}

TEST(Calendar, TrimDropsPastBookings) {
  CapacityCalendar cal(10'000'000);
  ASSERT_TRUE(cal.book(1'000'000, 0.0, 10.0).ok());
  ASSERT_TRUE(cal.book(1'000'000, 20.0, 30.0).ok());
  cal.trim(15.0);
  EXPECT_EQ(cal.booking_count(), 1u);
}

// --- Planner over a real offer list. --------------------------------------

struct PlannerFixture : public ::testing::Test {
  PlannerFixture() {
    for (int i = 0; i < 2; ++i) {
      MediaServerConfig s;
      s.id = i == 0 ? "server-a" : "server-b";
      s.node = "server-node-" + std::to_string(i);
      s.disk_bandwidth_bps = 100'000'000;
      s.max_sessions = 32;
      servers.push_back(std::move(s));
    }
  }

  OfferList classified_offers(const UserProfile& profile) {
    auto doc = sys.catalog.find("article");
    auto feasible = compatible_variants(doc, sys.client, profile.mm);
    EXPECT_TRUE(feasible.ok());
    OfferList list = enumerate_offers(feasible.value(), profile.mm, CostModel{});
    classify_offers(list.offers, profile.mm, profile.importance);
    return list;
  }

  TestSystem sys;
  std::vector<MediaServerConfig> servers;
};

TEST_F(PlannerFixture, EmptySystemPlansImmediately) {
  FutureReservationPlanner planner(sys.transport->topology(), servers);
  const UserProfile profile = TestSystem::tolerant_profile();
  OfferList offers = classified_offers(profile);
  auto plan = planner.plan(sys.client, offers, profile.mm, 100.0);
  ASSERT_TRUE(plan.ok()) << plan.error();
  EXPECT_DOUBLE_EQ(plan.value().start_s, 100.0);
  EXPECT_TRUE(plan.value().satisfies_user);
  EXPECT_EQ(plan.value().offer_index, 0u);  // the best offer fits at once
  EXPECT_EQ(planner.active_plans(), 1u);
}

TEST_F(PlannerFixture, SecondPlanStartsAfterBlockingBooking) {
  // Shrink the client's access link so only one video stream fits at a time.
  Topology narrow = Topology::dumbbell(1, 2, 12'000'000, 400'000'000);
  FutureReservationPlanner planner(narrow, servers);
  const UserProfile profile = TestSystem::tolerant_profile();
  OfferList offers = classified_offers(profile);

  auto first = planner.plan(sys.client, offers, profile.mm, 0.0);
  ASSERT_TRUE(first.ok()) << first.error();
  EXPECT_DOUBLE_EQ(first.value().start_s, 0.0);

  auto second = planner.plan(sys.client, offers, profile.mm, 0.0);
  ASSERT_TRUE(second.ok()) << second.error();
  // Either a leaner simultaneous configuration or a deferred start; if it
  // starts at 0 it must be a different (leaner) offer.
  if (second.value().start_s == 0.0) {
    EXPECT_NE(second.value().offer_index, first.value().offer_index);
  } else {
    EXPECT_GE(second.value().start_s, first.value().end_s);
  }
}

TEST_F(PlannerFixture, DeferredStartWhenNothingFitsNow) {
  // Access link fits exactly one *minimal* stream; saturate it with the
  // best offer, then ask for the same again with a floor that rules out
  // leaner variants -> the plan must be deferred.
  Topology narrow = Topology::dumbbell(1, 2, 12'000'000, 400'000'000);
  FutureReservationPlanner planner(narrow, servers);
  UserProfile strict = TestSystem::tolerant_profile();
  strict.mm.video->worst = VideoQoS{ColorDepth::kColor, 25, 640};  // only the rich variants
  strict.mm.audio.reset();
  strict.mm.text.reset();
  OfferList offers = classified_offers(strict);

  auto first = planner.plan(sys.client, offers, strict.mm, 0.0);
  ASSERT_TRUE(first.ok()) << first.error();
  auto second = planner.plan(sys.client, offers, strict.mm, 0.0);
  ASSERT_TRUE(second.ok()) << second.error();
  EXPECT_GE(second.value().start_s, first.value().end_s);
  EXPECT_GT(second.value().start_s, 0.0);
}

TEST_F(PlannerFixture, HorizonBoundsTheSearch) {
  Topology narrow = Topology::dumbbell(1, 2, 12'000'000, 400'000'000);
  FutureReservationPlanner::Config config;
  config.max_start_delay_s = 10.0;  // much shorter than a playout
  FutureReservationPlanner planner(narrow, servers, config);
  const UserProfile profile = TestSystem::tolerant_profile();
  OfferList offers = classified_offers(profile);
  // Keep planning until the 10 s window after t=0 is exhausted; every
  // admitted plan must start within the horizon, and the planner must
  // eventually refuse instead of booking arbitrarily far out.
  int admitted = 0;
  for (int i = 0; i < 64; ++i) {
    auto plan = planner.plan(sys.client, offers, profile.mm, 0.0);
    if (!plan.ok()) break;
    EXPECT_LE(plan.value().start_s, 10.0);
    ++admitted;
  }
  EXPECT_GT(admitted, 0);
  EXPECT_LT(admitted, 64);
}

TEST_F(PlannerFixture, CancelFreesTheWindow) {
  Topology narrow = Topology::dumbbell(1, 2, 12'000'000, 400'000'000);
  FutureReservationPlanner planner(narrow, servers);
  UserProfile strict = TestSystem::tolerant_profile();
  strict.mm.video->worst = VideoQoS{ColorDepth::kColor, 25, 640};
  strict.mm.audio.reset();
  strict.mm.text.reset();
  OfferList offers = classified_offers(strict);
  auto first = planner.plan(sys.client, offers, strict.mm, 0.0);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(planner.cancel(first.value().id));
  auto second = planner.plan(sys.client, offers, strict.mm, 0.0);
  ASSERT_TRUE(second.ok());
  EXPECT_DOUBLE_EQ(second.value().start_s, 0.0);
  EXPECT_FALSE(planner.cancel(first.value().id));
}

TEST_F(PlannerFixture, UnknownServerVariantIsSkippedGracefully) {
  // An offer referencing a server the planner has no calendar for cannot be
  // planned; the planner reports failure instead of crashing.
  FutureReservationPlanner planner(sys.transport->topology(), {});  // no servers at all
  const UserProfile profile = TestSystem::tolerant_profile();
  OfferList offers = classified_offers(profile);
  auto plan = planner.plan(sys.client, offers, profile.mm, 0.0);
  EXPECT_FALSE(plan.ok());
}

TEST_F(PlannerFixture, TrimDoesNotAffectLivePlans) {
  FutureReservationPlanner planner(sys.transport->topology(), servers);
  const UserProfile profile = TestSystem::tolerant_profile();
  OfferList offers = classified_offers(profile);
  auto plan = planner.plan(sys.client, offers, profile.mm, 100.0);
  ASSERT_TRUE(plan.ok());
  planner.trim(50.0);  // before the plan's window: nothing to drop
  EXPECT_EQ(planner.active_plans(), 1u);
  // The window is still occupied: an identical strict request defers.
  EXPECT_TRUE(planner.cancel(plan.value().id));
}

TEST_F(PlannerFixture, EarliestStartMonotoneInLoad) {
  Topology narrow = Topology::dumbbell(1, 2, 12'000'000, 400'000'000);
  FutureReservationPlanner planner(narrow, servers);
  UserProfile strict = TestSystem::tolerant_profile();
  strict.mm.video->worst = VideoQoS{ColorDepth::kColor, 25, 640};
  strict.mm.audio.reset();
  strict.mm.text.reset();
  OfferList offers = classified_offers(strict);
  double last_start = -1.0;
  for (int i = 0; i < 4; ++i) {
    auto plan = planner.plan(sys.client, offers, strict.mm, 0.0);
    ASSERT_TRUE(plan.ok()) << plan.error();
    EXPECT_GE(plan.value().start_s, last_start);
    last_start = plan.value().start_s;
  }
}

}  // namespace
}  // namespace qosnp
