#include "document/catalog.hpp"
#include "document/corpus.hpp"
#include "document/model.hpp"

#include <gtest/gtest.h>

#include <set>

namespace qosnp {
namespace {

MultimediaDocument tiny_doc() {
  MultimediaDocument doc;
  doc.id = "doc-1";
  doc.title = "tiny";
  doc.copyright_cost = Money::cents(50);
  Monomedia video;
  video.id = "doc-1/video";
  video.kind = MediaKind::kVideo;
  video.duration_s = 120.0;
  video.variants.push_back(make_video_variant(
      "doc-1/video/v0", VideoQoS{ColorDepth::kColor, 25, 640}, CodingFormat::kMPEG1, 120.0,
      "server-a"));
  doc.monomedia.push_back(std::move(video));
  return doc;
}

TEST(Model, VariantBlockMetadataIsConsistent) {
  const VideoQoS qos{ColorDepth::kColor, 25, 640};
  const Variant v = make_video_variant("v", qos, CodingFormat::kMPEG1, 60.0, "s");
  EXPECT_GT(v.avg_block_bytes, 0);
  EXPECT_GE(v.max_block_bytes, v.avg_block_bytes);
  EXPECT_DOUBLE_EQ(v.blocks_per_second, 25.0);
  EXPECT_GT(v.file_bytes, 0);
  EXPECT_EQ(v.kind(), MediaKind::kVideo);
}

TEST(Model, VideoFrameBytesGrowWithQuality) {
  const auto small = video_avg_frame_bytes(VideoQoS{ColorDepth::kGray, 25, 320},
                                           CodingFormat::kMPEG1);
  const auto big = video_avg_frame_bytes(VideoQoS{ColorDepth::kSuperColor, 25, 1280},
                                         CodingFormat::kMPEG1);
  EXPECT_GT(big, small);
  // MJPEG compresses less aggressively than MPEG-1.
  const VideoQoS q{ColorDepth::kColor, 25, 640};
  EXPECT_GT(video_avg_frame_bytes(q, CodingFormat::kMJPEG),
            video_avg_frame_bytes(q, CodingFormat::kMPEG1));
}

TEST(Model, MpegBurstExceedsMjpegBurst) {
  const VideoQoS q{ColorDepth::kColor, 25, 640};
  const double mpeg_ratio =
      static_cast<double>(video_max_frame_bytes(q, CodingFormat::kMPEG1)) /
      static_cast<double>(video_avg_frame_bytes(q, CodingFormat::kMPEG1));
  const double mjpeg_ratio =
      static_cast<double>(video_max_frame_bytes(q, CodingFormat::kMJPEG)) /
      static_cast<double>(video_avg_frame_bytes(q, CodingFormat::kMJPEG));
  EXPECT_GT(mpeg_ratio, mjpeg_ratio);
}

TEST(Model, AudioBlockBytesFollowQualityAndCodec) {
  EXPECT_GT(audio_block_bytes(AudioQuality::kCD, CodingFormat::kPCM),
            audio_block_bytes(AudioQuality::kTelephone, CodingFormat::kPCM));
  EXPECT_GT(audio_block_bytes(AudioQuality::kCD, CodingFormat::kPCM),
            audio_block_bytes(AudioQuality::kCD, CodingFormat::kMPEGAudio));
}

TEST(Model, DiscreteVariantsHaveZeroBlockRate) {
  const Variant t = make_text_variant("t", Language::kEnglish, CodingFormat::kPlainText, 5000,
                                      "server-a");
  EXPECT_EQ(t.blocks_per_second, 0.0);
  EXPECT_EQ(t.file_bytes, 5000);
  const Variant i = make_image_variant("i", ImageQoS{ColorDepth::kColor, 640},
                                       CodingFormat::kJPEG, "server-a");
  EXPECT_EQ(i.blocks_per_second, 0.0);
  EXPECT_GT(i.file_bytes, 0);
}

TEST(Model, DurationIsLongestComponent) {
  MultimediaDocument doc = tiny_doc();
  Monomedia audio;
  audio.id = "doc-1/audio";
  audio.kind = MediaKind::kAudio;
  audio.duration_s = 90.0;
  audio.variants.push_back(make_audio_variant("doc-1/audio/v0", AudioQuality::kCD,
                                              CodingFormat::kPCM, 90.0, "server-a"));
  doc.monomedia.push_back(std::move(audio));
  EXPECT_DOUBLE_EQ(doc.duration_s(), 120.0);
}

TEST(Model, FindHelpers) {
  const MultimediaDocument doc = tiny_doc();
  ASSERT_NE(doc.find_monomedia("doc-1/video"), nullptr);
  EXPECT_EQ(doc.find_monomedia("nope"), nullptr);
  const Monomedia* m = doc.find_monomedia("doc-1/video");
  ASSERT_NE(m->find_variant("doc-1/video/v0"), nullptr);
  EXPECT_EQ(m->find_variant("nope"), nullptr);
}

TEST(Model, ValidateAcceptsGoodDocument) {
  EXPECT_TRUE(validate(tiny_doc()).empty());
}

TEST(Model, ValidateCatchesEmptyDocument) {
  MultimediaDocument doc;
  doc.id = "empty";
  EXPECT_FALSE(validate(doc).empty());
}

TEST(Model, ValidateCatchesKindMismatch) {
  MultimediaDocument doc = tiny_doc();
  doc.monomedia[0].variants[0].qos = AudioQoS{AudioQuality::kCD};
  EXPECT_FALSE(validate(doc).empty());
}

TEST(Model, ValidateCatchesBlockLengthInversion) {
  MultimediaDocument doc = tiny_doc();
  doc.monomedia[0].variants[0].avg_block_bytes =
      doc.monomedia[0].variants[0].max_block_bytes + 1;
  EXPECT_FALSE(validate(doc).empty());
}

TEST(Model, ValidateCatchesDanglingSyncReferences) {
  MultimediaDocument doc = tiny_doc();
  doc.sync.temporal.push_back(
      TemporalRelation{"doc-1/video", "ghost", TemporalRelation::Type::kParallel, 0.0});
  EXPECT_FALSE(validate(doc).empty());
  doc.sync.temporal.clear();
  doc.sync.spatial.push_back(SpatialRegion{"ghost", 0, 0, 10, 10});
  EXPECT_FALSE(validate(doc).empty());
}

TEST(Model, LayoutExtent) {
  MultimediaDocument doc = tiny_doc();
  doc.sync.spatial.push_back(SpatialRegion{"doc-1/video", 0, 0, 640, 480});
  doc.sync.spatial.push_back(SpatialRegion{"doc-1/video", 640, 100, 320, 240});
  const auto [w, h] = doc.layout_extent();
  EXPECT_EQ(w, 960);
  EXPECT_EQ(h, 480);
}

TEST(Catalog, AddFindRemove) {
  Catalog catalog;
  EXPECT_TRUE(catalog.add(tiny_doc()).empty());
  EXPECT_EQ(catalog.size(), 1u);
  auto doc = catalog.find("doc-1");
  ASSERT_NE(doc, nullptr);
  EXPECT_EQ(doc->title, "tiny");
  EXPECT_TRUE(catalog.remove("doc-1"));
  EXPECT_FALSE(catalog.remove("doc-1"));
  EXPECT_EQ(catalog.find("doc-1"), nullptr);
}

TEST(Catalog, RejectsInvalidDocument) {
  Catalog catalog;
  MultimediaDocument bad;
  bad.id = "bad";
  EXPECT_FALSE(catalog.add(bad).empty());
  EXPECT_EQ(catalog.size(), 0u);
}

TEST(Catalog, DocumentSurvivesRemoval) {
  Catalog catalog;
  catalog.add(tiny_doc());
  auto doc = catalog.find("doc-1");
  catalog.remove("doc-1");
  // The shared_ptr keeps the document alive for in-flight negotiations.
  EXPECT_EQ(doc->id, "doc-1");
}

TEST(Catalog, VariantsOnServer) {
  Catalog catalog;
  catalog.add(tiny_doc());
  EXPECT_EQ(catalog.variants_on_server("server-a").size(), 1u);
  EXPECT_TRUE(catalog.variants_on_server("server-zzz").empty());
}

TEST(Corpus, GeneratesRequestedCount) {
  CorpusConfig config;
  config.num_documents = 12;
  const auto docs = generate_corpus(config);
  EXPECT_EQ(docs.size(), 12u);
}

TEST(Corpus, EveryGeneratedDocumentValidates) {
  CorpusConfig config;
  config.num_documents = 40;
  config.seed = 7;
  for (const auto& doc : generate_corpus(config)) {
    EXPECT_TRUE(validate(doc).empty()) << doc.id;
  }
}

TEST(Corpus, DeterministicForSeed) {
  CorpusConfig config;
  config.num_documents = 5;
  config.seed = 99;
  const auto a = generate_corpus(config);
  const auto b = generate_corpus(config);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].copyright_cost, b[i].copyright_cost);
    ASSERT_EQ(a[i].monomedia.size(), b[i].monomedia.size());
    for (std::size_t m = 0; m < a[i].monomedia.size(); ++m) {
      EXPECT_EQ(a[i].monomedia[m].variants.size(), b[i].monomedia[m].variants.size());
    }
  }
}

TEST(Corpus, UsesConfiguredServers) {
  CorpusConfig config;
  config.num_documents = 20;
  config.servers = {"s1", "s2", "s3"};
  std::set<ServerId> used;
  for (const auto& doc : generate_corpus(config)) {
    for (const auto& m : doc.monomedia) {
      for (const auto& v : m.variants) used.insert(v.server);
    }
  }
  for (const auto& s : used) {
    EXPECT_TRUE(s == "s1" || s == "s2" || s == "s3") << s;
  }
  EXPECT_GE(used.size(), 2u);
}

TEST(Corpus, VideoLadderSizeRespectsBounds) {
  CorpusConfig config;
  config.num_documents = 30;
  config.min_video_variants = 3;
  config.max_video_variants = 5;
  config.replication_probability = 0.0;
  for (const auto& doc : generate_corpus(config)) {
    const Monomedia* video = doc.find_monomedia(doc.id + "/video");
    ASSERT_NE(video, nullptr);
    EXPECT_GE(video->variants.size(), 3u);
    EXPECT_LE(video->variants.size(), 5u);
  }
}

TEST(Corpus, CopyrightWithinRange) {
  CorpusConfig config;
  config.num_documents = 25;
  config.min_copyright = Money::cents(10);
  config.max_copyright = Money::cents(20);
  for (const auto& doc : generate_corpus(config)) {
    EXPECT_GE(doc.copyright_cost, Money::cents(10));
    EXPECT_LE(doc.copyright_cost, Money::cents(20));
  }
}

}  // namespace
}  // namespace qosnp
