// Observability layer: per-request traces, the metrics registry, trace
// sinks, and their wiring through the QoS manager and the service.
//
// The property tests pin the trace contract — one span per executed stage,
// child spans reference earlier parents, timestamps are monotone, the ring
// sink never exceeds its capacity — and the conservation law the registry
// must obey: every submitted request resolves into exactly one per-verdict
// response counter increment, sheds included.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "obs/trace_sink.hpp"
#include "test_service.hpp"
#include "test_system.hpp"

namespace qosnp {
namespace {

using testing::ServiceSystem;
using testing::TestSystem;

// --- MetricsRegistry ------------------------------------------------------

TEST(Metrics, CounterAccumulatesAcrossShards) {
  Counter c;
  for (int i = 0; i < 1000; ++i) c.inc();
  c.add(500);
  EXPECT_EQ(c.value(), 1500u);
}

TEST(Metrics, GaugeSetAddAndMax) {
  Gauge g;
  g.set(10);
  g.add(5);
  g.sub(3);
  EXPECT_EQ(g.value(), 12);
  g.update_max(7);
  EXPECT_EQ(g.value(), 12);  // never lowers
  g.update_max(40);
  EXPECT_EQ(g.value(), 40);
}

TEST(Metrics, RegistryReturnsStableHandles) {
  MetricsRegistry registry;
  Counter& a = registry.counter("requests", {{"verdict", "SUCCEEDED"}});
  Counter& b = registry.counter("requests", {{"verdict", "SUCCEEDED"}});
  Counter& other = registry.counter("requests", {{"verdict", "FAILEDTRYLATER"}});
  EXPECT_EQ(&a, &b);
  EXPECT_NE(&a, &other);
  a.add(3);
  EXPECT_EQ(registry.counter_value("requests", {{"verdict", "SUCCEEDED"}}), 3u);
  EXPECT_EQ(registry.counter_value("requests", {{"verdict", "FAILEDTRYLATER"}}), 0u);
  EXPECT_EQ(registry.counter_value("never-registered"), 0u);
}

TEST(Metrics, ExposeRendersPrometheusText) {
  MetricsRegistry registry;
  registry.counter("qosnp_requests_total", {}, "Requests submitted").add(7);
  registry.gauge("qosnp_queue_depth", {}, "Live queue depth").set(4);
  registry.counter("qosnp_responses_total", {{"verdict", "SUCCEEDED"}}).add(5);
  registry.histogram("qosnp_latency_ms", {}, "Latency").record(3.0);
  const std::string text = registry.expose();
  EXPECT_NE(text.find("# HELP qosnp_requests_total Requests submitted"), std::string::npos);
  EXPECT_NE(text.find("# TYPE qosnp_requests_total counter"), std::string::npos);
  EXPECT_NE(text.find("qosnp_requests_total 7"), std::string::npos);
  EXPECT_NE(text.find("# TYPE qosnp_queue_depth gauge"), std::string::npos);
  EXPECT_NE(text.find("qosnp_queue_depth 4"), std::string::npos);
  EXPECT_NE(text.find("qosnp_responses_total{verdict=\"SUCCEEDED\"} 5"), std::string::npos);
  EXPECT_NE(text.find("# TYPE qosnp_latency_ms summary"), std::string::npos);
  EXPECT_NE(text.find("qosnp_latency_ms_count 1"), std::string::npos);
}

// --- NegotiationTrace -----------------------------------------------------

TEST(Trace, SpansNestAndTimestampsAreMonotone) {
  NegotiationTrace trace(42);
  const SpanId root = trace.begin_span(Stage::kCommitWalk);
  const SpanId child = trace.begin_span(Stage::kCommitAttempt, root);
  trace.annotate(child, "offer", std::uint64_t{0});
  trace.end_span(child);
  trace.end_span(root);
  ASSERT_EQ(trace.spans().size(), 2u);
  EXPECT_EQ(trace.spans()[1].parent, root);
  EXPECT_TRUE(trace.spans()[0].closed());
  EXPECT_TRUE(trace.spans()[1].closed());
  EXPECT_LE(trace.spans()[0].start_ms, trace.spans()[1].start_ms);
  EXPECT_LE(trace.spans()[1].end_ms, trace.spans()[0].end_ms);
  EXPECT_EQ(trace.spans()[1].attr("offer"), "0");
  EXPECT_EQ(trace.count(Stage::kCommitAttempt), 1u);
}

TEST(Trace, InactiveContextIsANoOp) {
  TraceContext ctx;  // no trace attached
  EXPECT_FALSE(ctx.active());
  ctx.annotate("key", "value");  // must not crash
  ScopedSpan span(ctx, Stage::kLocalCheck);
  EXPECT_FALSE(span.active());
  span.annotate("key", 1.0);
}

TEST(Trace, JsonRenderingEscapesAndListsSpans) {
  NegotiationTrace trace(7);
  trace.set_verdict("SUCCEEDED");
  const SpanId s = trace.begin_span(Stage::kLocalCheck);
  trace.annotate(s, "note", "quote \" and \\ back");
  trace.end_span(s);
  const std::string json = trace.to_json();
  EXPECT_NE(json.find("\"request_id\":7"), std::string::npos);
  EXPECT_NE(json.find("\"verdict\":\"SUCCEEDED\""), std::string::npos);
  EXPECT_NE(json.find("\"stage\":\"local-check\""), std::string::npos);
  EXPECT_NE(json.find("quote \\\" and \\\\ back"), std::string::npos);
}

// A traced negotiation driven directly through the QoSManager records the
// full Step 1-5 span ladder.
TEST(Trace, ManagerRecordsOneSpanPerExecutedStage) {
  TestSystem sys;
  QoSManager manager(sys.catalog, sys.farm, *sys.transport);
  NegotiationTrace trace(1);
  NegotiationResult result = manager.negotiate(make_negotiation_request(sys.client, "article",
                                               TestSystem::tolerant_profile(),
                                               TraceContext(&trace)));
  ASSERT_EQ(result.verdict, NegotiationStatus::kSucceeded);
  EXPECT_EQ(trace.count(Stage::kLocalCheck), 1u);
  EXPECT_EQ(trace.count(Stage::kCompatibility), 1u);
  EXPECT_EQ(trace.count(Stage::kEnumeration), 1u);
  EXPECT_EQ(trace.count(Stage::kCommitWalk), 1u);
  EXPECT_GE(trace.count(Stage::kCommitAttempt), 1u);
  for (const Span& span : trace.spans()) EXPECT_TRUE(span.closed());
  // Exactly one attempt committed, and every attempt nests under the walk.
  std::size_t committed = 0;
  for (const Span& span : trace.spans()) {
    if (span.stage != Stage::kCommitAttempt) continue;
    if (span.attr("result") == "committed") ++committed;
    ASSERT_NE(span.parent, kNoSpan);
    EXPECT_EQ(trace.spans()[span.parent].stage, Stage::kCommitWalk);
  }
  EXPECT_EQ(committed, 1u);
}

// With every server down, the refusal component is attributed end-to-end:
// the failed commit-attempt span names who refused and how often we tried.
TEST(Trace, FailedCommitAttemptsNameTheRefusingComponent) {
  TestSystem sys;
  sys.farm.find("server-a")->fail();
  sys.farm.find("server-b")->fail();
  QoSManager manager(sys.catalog, sys.farm, *sys.transport);
  NegotiationTrace trace(2);
  NegotiationResult result = manager.negotiate(make_negotiation_request(sys.client, "article",
                                               TestSystem::tolerant_profile(),
                                               TraceContext(&trace)));
  ASSERT_EQ(result.verdict, NegotiationStatus::kFailedTryLater);
  ASSERT_GE(trace.count(Stage::kCommitAttempt), 1u);
  for (const Span& span : trace.spans()) {
    if (span.stage != Stage::kCommitAttempt) continue;
    EXPECT_EQ(span.attr("result"), "refused");
    EXPECT_FALSE(span.attr("component").empty());
    EXPECT_FALSE(span.attr("attempts").empty());
  }
  sys.farm.find("server-a")->recover();
  sys.farm.find("server-b")->recover();
}

// --- Trace sinks ----------------------------------------------------------

std::shared_ptr<const NegotiationTrace> make_trace(std::uint64_t id) {
  auto t = std::make_shared<NegotiationTrace>(id);
  t->end_span(t->begin_span(Stage::kLocalCheck));
  return t;
}

TEST(TraceSinks, RingBufferNeverExceedsCapacity) {
  RingBufferSink ring(4);
  for (std::uint64_t i = 1; i <= 10; ++i) {
    ring.record(make_trace(i));
    EXPECT_LE(ring.size(), 4u);
  }
  EXPECT_EQ(ring.size(), 4u);
  EXPECT_EQ(ring.total_recorded(), 10u);
  const auto held = ring.snapshot();
  ASSERT_EQ(held.size(), 4u);
  // Oldest first: traces 7..10 survive.
  for (std::size_t i = 0; i < held.size(); ++i) {
    EXPECT_EQ(held[i]->request_id(), 7 + i);
  }
  EXPECT_NE(ring.find(10), nullptr);
  EXPECT_EQ(ring.find(3), nullptr);  // evicted
}

TEST(TraceSinks, JsonlFileSinkWritesOneLinePerTrace) {
  const std::string path = ::testing::TempDir() + "qosnp_traces_test.jsonl";
  std::remove(path.c_str());
  {
    JsonlFileSink sink(path);
    ASSERT_TRUE(sink.ok());
    sink.record(make_trace(1));
    sink.record(make_trace(2));
    sink.flush();
    EXPECT_EQ(sink.written(), 2u);
  }
  std::ifstream in(path);
  std::string line;
  std::size_t lines = 0;
  while (std::getline(in, line)) {
    ++lines;
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
    EXPECT_NE(line.find("\"request_id\":"), std::string::npos);
  }
  EXPECT_EQ(lines, 2u);
  std::remove(path.c_str());
}

// --- ServiceConfig validation ---------------------------------------------

TEST(ServiceValidation, RejectsZeroWorkers) {
  ServiceSystem sys(1);
  ServiceConfig config;
  config.workers = 0;
  EXPECT_THROW(NegotiationService(*sys.manager, *sys.sessions, config), std::invalid_argument);
}

TEST(ServiceValidation, RejectsZeroQueueCapacity) {
  ServiceSystem sys(1);
  ServiceConfig config;
  config.queue_capacity = 0;
  EXPECT_THROW(NegotiationService(*sys.manager, *sys.sessions, config), std::invalid_argument);
}

TEST(ServiceValidation, RejectsNegativeDeadline) {
  ServiceSystem sys(1);
  ServiceConfig config;
  config.deadline_ms = -1.0;
  EXPECT_THROW(NegotiationService(*sys.manager, *sys.sessions, config), std::invalid_argument);
}

TEST(ServiceValidation, RejectsNegativeRtt) {
  ServiceSystem sys(1);
  ServiceConfig config;
  config.simulated_rtt_ms = -0.5;
  EXPECT_THROW(NegotiationService(*sys.manager, *sys.sessions, config), std::invalid_argument);
}

// --- Service wiring: trace completeness + metrics conservation ------------

// Every trace a traced service records satisfies the structural contract:
// exactly one queue-wait span, one span per executed pipeline stage, child
// spans reference earlier spans, every span closed, timestamps monotone.
TEST(ServiceObservability, TracesAreCompleteAndWellFormed) {
  ServiceSystem sys(4);
  RingBufferSink ring(64);
  ServiceConfig config;
  config.workers = 2;
  config.queue_capacity = 32;
  config.trace_sink = &ring;
  NegotiationService service(*sys.manager, *sys.sessions, config);
  service.start();
  std::vector<std::future<NegotiationResult>> futures;
  const std::size_t kRequests = 40;
  for (std::size_t i = 0; i < kRequests; ++i) {
    NegotiationRequest req;
    req.id = i + 1;
    req.client = sys.clients[i % sys.clients.size()];
    req.document = "article";
    req.profile = TestSystem::tolerant_profile();
    futures.push_back(service.submit(std::move(req)));
  }
  for (auto& f : futures) {
    NegotiationResult resp = f.get();
    ASSERT_NE(resp.trace, nullptr);
    EXPECT_EQ(resp.trace->request_id(), resp.request_id);
    EXPECT_EQ(resp.trace->verdict(), to_string(resp.verdict));
    if (resp.session_id != 0) sys.sessions->complete(resp.session_id);
  }
  service.stop();
  EXPECT_TRUE(sys.drained());

  EXPECT_EQ(ring.total_recorded(), kRequests);
  for (const auto& trace : ring.snapshot()) {
    EXPECT_EQ(trace->count(Stage::kQueueWait), 1u);
    if (trace->shed() == "none") {
      EXPECT_EQ(trace->count(Stage::kLocalCheck), 1u);
      EXPECT_EQ(trace->count(Stage::kCompatibility), 1u);
      EXPECT_EQ(trace->count(Stage::kEnumeration), 1u);
      EXPECT_EQ(trace->count(Stage::kCommitWalk), 1u);
    }
    if (trace->verdict() == "SUCCEEDED") {
      EXPECT_GE(trace->count(Stage::kCommitAttempt), 1u);
      EXPECT_EQ(trace->count(Stage::kAdmission), 1u);
    }
    for (std::size_t i = 0; i < trace->spans().size(); ++i) {
      const Span& span = trace->spans()[i];
      EXPECT_TRUE(span.closed());
      EXPECT_LE(span.start_ms, span.end_ms);
      if (span.parent != kNoSpan) {
        EXPECT_LT(span.parent, i);  // parents begin before their children
      }
      if (i > 0) {
        EXPECT_LE(trace->spans()[i - 1].start_ms, span.start_ms);
      }
    }
  }
}

// Conservation: every submitted request — processed or shed at either edge —
// lands in exactly one per-verdict counter, so the verdict counters sum to
// the submitted count.
TEST(ServiceObservability, VerdictCountersConserveSubmissions) {
  ServiceSystem sys(8);
  MetricsRegistry registry;
  ServiceConfig config;
  config.workers = 2;
  config.queue_capacity = 2;  // force queue-full sheds
  config.simulated_rtt_ms = 1.0;
  config.metrics = &registry;
  NegotiationService service(*sys.manager, *sys.sessions, config);
  service.start();
  std::vector<std::future<NegotiationResult>> futures;
  const std::size_t kRequests = 120;
  for (std::size_t i = 0; i < kRequests; ++i) {
    NegotiationRequest req;
    req.id = i + 1;
    req.client = sys.clients[i % sys.clients.size()];
    req.document = "article";
    req.profile = TestSystem::tolerant_profile();
    futures.push_back(service.submit(std::move(req)));
  }
  for (auto& f : futures) {
    NegotiationResult resp = f.get();
    if (resp.session_id != 0) sys.sessions->complete(resp.session_id);
  }
  service.stop();
  EXPECT_TRUE(sys.drained());

  const ServiceReport report = service.report();
  EXPECT_EQ(report.submitted, kRequests);
  std::size_t resolved = 0;
  for (std::size_t v : report.by_status) resolved += v;
  EXPECT_EQ(resolved, kRequests);
  // The same law straight off the registry (what expose() would publish).
  std::size_t from_registry = 0;
  for (std::size_t i = 0; i < report.by_status.size(); ++i) {
    const auto status = static_cast<NegotiationStatus>(i);
    from_registry += registry.counter_value(
        "qosnp_responses_total", {{"verdict", std::string(to_string(status))}});
  }
  EXPECT_EQ(from_registry, kRequests);
  EXPECT_EQ(registry.counter_value("qosnp_requests_total"), kRequests);
  EXPECT_GT(report.shed_queue_full, 0u);  // the tiny queue really shed
  const std::string text = registry.expose();
  EXPECT_NE(text.find("qosnp_responses_total{verdict=\"SUCCEEDED\"}"), std::string::npos);
}

// Untraced service responses carry no trace handle, and the service's own
// registry still counts (metrics are always on).
TEST(ServiceObservability, TracingOffMeansNoTraceHandle) {
  ServiceSystem sys(2);
  NegotiationService service(*sys.manager, *sys.sessions, ServiceConfig{});
  service.start();
  NegotiationRequest req;
  req.id = 1;
  req.client = sys.clients[0];
  req.document = "article";
  req.profile = TestSystem::tolerant_profile();
  NegotiationResult resp = service.submit(std::move(req)).get();
  EXPECT_EQ(resp.trace, nullptr);
  EXPECT_EQ(resp.verdict, NegotiationStatus::kSucceeded);
  if (resp.session_id != 0) sys.sessions->complete(resp.session_id);
  service.stop();
  EXPECT_TRUE(sys.drained());
  EXPECT_EQ(service.metrics().counter_value("qosnp_requests_total"), 1u);
  EXPECT_EQ(service.metrics().counter_value("qosnp_traces_recorded_total"), 0u);
}

}  // namespace
}  // namespace qosnp
