// The sharded-federation suite:
//   - ShardDirectory properties: the ring hash is pure and stable across
//     instances, one shard owns everything, growing the ring remaps only a
//     consistent-hash-sized fraction of keys, registration is idempotent
//     and split ownership throws;
//   - the 500+-seed differential: ShardedClient over a one-shard federation
//     is byte-identical (result signature) to ServiceClient over the
//     identical unsharded world, request for request;
//   - cross-shard commits reserve on every owning shard and drain to zero;
//   - the rollback property: injected mid-walk faults (faulty farms and
//     transports on both shards) never leak a reservation;
//   - WireShardRouter over real loopback backends: consistent-hash routing,
//     retry-on-another-shard for kOverloaded ONLY, fast typed failure for
//     kDeadlineExceeded;
//   - the population simulator over a one-shard ShardedPopulationBackend is
//     byte-identical to the in-process service backend.
#include "shard/sharded_service.hpp"

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <array>
#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "document/corpus.hpp"
#include "fault/fault_injector.hpp"
#include "netio/server.hpp"
#include "result_signature.hpp"
#include "service/service_backend.hpp"
#include "service/service_client.hpp"
#include "shard/sharded_backend.hpp"
#include "shard/sharded_client.hpp"
#include "shard/wire_router.hpp"
#include "test_service.hpp"

namespace qosnp {
namespace {

using testing::ServiceSystem;
using testing::TestSystem;
using testing::result_signature;
using wire::WireErrorCode;

// --- shared builders --------------------------------------------------------

std::vector<ClientMachine> make_clients(int n) {
  std::vector<ClientMachine> clients;
  clients.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    ClientMachine c;
    c.name = "client-" + std::to_string(i);
    c.node = c.name;
    c.screen = ScreenSpec{1920, 1080, ColorDepth::kSuperColor};
    c.decoders = {CodingFormat::kMPEG1,     CodingFormat::kMPEG2,
                  CodingFormat::kMJPEG,     CodingFormat::kPCM,
                  CodingFormat::kADPCM,     CodingFormat::kMPEGAudio,
                  CodingFormat::kPlainText, CodingFormat::kJPEG,
                  CodingFormat::kGIF};
    c.max_audio = AudioQuality::kCD;
    clients.push_back(std::move(c));
  }
  return clients;
}

/// A document no single shard can serve: every video variant on one server,
/// every audio/text variant on another — each offer must span both.
MultimediaDocument cross_document(const std::string& id, const ServerId& video_server,
                                  const ServerId& other_server) {
  MultimediaDocument doc;
  doc.id = id;
  doc.title = "Cross-shard " + id;
  doc.copyright_cost = Money::cents(10);
  const double duration = 60.0;

  Monomedia video;
  video.id = id + "/video";
  video.kind = MediaKind::kVideo;
  video.duration_s = duration;
  video.variants = {
      make_video_variant(id + "/video/hi", VideoQoS{ColorDepth::kColor, 25, 640},
                         CodingFormat::kMPEG1, duration, video_server),
      make_video_variant(id + "/video/lo", VideoQoS{ColorDepth::kBlackWhite, 10, 320},
                         CodingFormat::kMPEG1, duration, video_server),
  };
  doc.monomedia.push_back(std::move(video));

  Monomedia audio;
  audio.id = id + "/audio";
  audio.kind = MediaKind::kAudio;
  audio.duration_s = duration;
  audio.variants = {
      make_audio_variant(id + "/audio/cd", AudioQuality::kCD, CodingFormat::kPCM, duration,
                         other_server),
      make_audio_variant(id + "/audio/tel", AudioQuality::kTelephone, CodingFormat::kADPCM,
                         duration, other_server),
  };
  doc.monomedia.push_back(std::move(audio));

  Monomedia text;
  text.id = id + "/text";
  text.kind = MediaKind::kText;
  text.variants = {make_text_variant(id + "/text/en", Language::kEnglish,
                                     CodingFormat::kPlainText, 8'000, other_server)};
  doc.monomedia.push_back(std::move(text));
  return doc;
}

/// Two shards owning server-a / server-b on the usual dumbbell nodes. Every
/// shard's topology carries all client nodes (any shard may terminate a
/// flow at any client) plus both server nodes — but each *registers* only
/// its own.
std::vector<ShardSpec> two_shard_specs(int num_clients, std::int64_t access_bps = 50'000'000,
                                       std::int64_t backbone_bps = 200'000'000,
                                       std::int64_t server_bps = 100'000'000,
                                       int server_sessions = 32) {
  std::vector<ShardSpec> specs(2);
  for (int k = 0; k < 2; ++k) {
    MediaServerConfig server;
    server.id = k == 0 ? "server-a" : "server-b";
    server.node = "server-node-" + std::to_string(k);
    server.disk_bandwidth_bps = server_bps;
    server.max_sessions = server_sessions;
    specs[static_cast<std::size_t>(k)].servers.push_back(std::move(server));
    specs[static_cast<std::size_t>(k)].topology =
        Topology::dumbbell(num_clients, 2, access_bps, backbone_bps);
  }
  return specs;
}

NegotiationRequest tolerant_request(std::uint64_t id, const ClientMachine& client,
                                    DocumentId document) {
  NegotiationRequest req;
  req.id = id;
  req.client = client;
  req.document = std::move(document);
  req.profile = TestSystem::tolerant_profile();
  return req;
}

// --- directory properties ---------------------------------------------------

TEST(ShardDirectoryProperty, HashIsPureAndStableAcrossInstances) {
  const ShardDirectory first(5);
  const ShardDirectory second(5);
  for (int i = 0; i < 1000; ++i) {
    const std::string key = "doc-" + std::to_string(i);
    const std::size_t shard = first.shard_of_key(key);
    EXPECT_LT(shard, 5u);
    EXPECT_EQ(shard, second.shard_of_key(key)) << key;
  }
  // The hash itself is exposed and deterministic.
  EXPECT_EQ(shard_key_hash("article"), shard_key_hash("article"));
  EXPECT_NE(shard_key_hash("article"), shard_key_hash("article2"));
}

TEST(ShardDirectoryProperty, SingleShardOwnsEveryKey) {
  const ShardDirectory directory(1);
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(directory.shard_of_key("key-" + std::to_string(i)), 0u);
  }
}

TEST(ShardDirectoryProperty, EveryShardOwnsSomeKeys) {
  // More virtual nodes than the default: this asserts ring coverage, and
  // coverage is exactly what virtual-node count buys.
  const ShardDirectory directory(8, /*virtual_nodes=*/256);
  std::set<std::size_t> seen;
  for (int i = 0; i < 4000; ++i) {
    seen.insert(directory.shard_of_key("key-" + std::to_string(i)));
  }
  EXPECT_EQ(seen.size(), 8u);
}

TEST(ShardDirectoryProperty, GrowingTheRingRemapsOnlyAFraction) {
  // The consistent-hashing contract: going from N to N+1 shards moves about
  // 1/(N+1) of the keys — never anything close to a full reshuffle.
  constexpr int kKeys = 4000;
  const ShardDirectory before(4);
  const ShardDirectory after(5);
  int moved = 0;
  for (int i = 0; i < kKeys; ++i) {
    const std::string key = "doc-" + std::to_string(i);
    if (before.shard_of_key(key) != after.shard_of_key(key)) ++moved;
  }
  const double fraction = static_cast<double>(moved) / kKeys;
  EXPECT_GT(fraction, 0.02);  // the new shard took ownership of something
  EXPECT_LT(fraction, 0.45);  // ...but nowhere near a modulo-style reshuffle
}

TEST(ShardDirectory, RegistrationIsIdempotentAndSplitOwnershipThrows) {
  ShardDirectory directory(3);
  directory.register_server("server-a", 1);
  directory.register_server("server-a", 1);  // same shard: fine
  EXPECT_EQ(directory.shard_of_server("server-a"), std::optional<std::size_t>(1));
  EXPECT_THROW(directory.register_server("server-a", 2), std::invalid_argument);
  EXPECT_THROW(directory.register_server("server-x", 3), std::out_of_range);

  directory.register_node("node-a", 0);
  directory.register_node("node-a", 0);
  EXPECT_EQ(directory.shard_of_node("node-a"), std::optional<std::size_t>(0));
  EXPECT_THROW(directory.register_node("node-a", 1), std::invalid_argument);
  EXPECT_FALSE(directory.shard_of_server("unknown").has_value());
  EXPECT_FALSE(directory.shard_of_node("unknown").has_value());
}

// --- the N=1 differential ---------------------------------------------------

TEST(ShardedDifferential, SingleShardClientIsByteIdenticalToServiceClient) {
  constexpr int kClients = 8;
  constexpr std::uint64_t kSeeds = 520;

  // Shared corpus so both catalogs hold identical documents.
  CorpusConfig corpus;
  corpus.seed = 11;
  corpus.num_documents = 8;
  corpus.min_duration_s = 30.0;
  corpus.max_duration_s = 90.0;
  const std::vector<MultimediaDocument> docs = generate_corpus(corpus);

  // The unsharded twin: ServiceSystem + NegotiationService + ServiceClient.
  ServiceSystem direct_sys(kClients, 50'000'000, 200'000'000, 100'000'000, 32);
  for (MultimediaDocument doc : docs) direct_sys.catalog.add(std::move(doc));
  const NodeConfig node;  // defaults on both sides
  NegotiationService direct(*direct_sys.manager, *direct_sys.sessions, node.service());
  direct.start();
  ServiceClient direct_client(direct);

  // The one-shard federation over the identical world.
  std::vector<ShardSpec> specs(1);
  for (int i = 0; i < 2; ++i) {
    MediaServerConfig server;
    server.id = i == 0 ? "server-a" : "server-b";
    server.node = "server-node-" + std::to_string(i);
    server.disk_bandwidth_bps = 100'000'000;
    server.max_sessions = 32;
    specs[0].servers.push_back(std::move(server));
  }
  specs[0].topology = Topology::dumbbell(kClients, 2, 50'000'000, 200'000'000);
  ShardedService sharded(std::move(specs), node);
  EXPECT_TRUE(sharded.add_document(TestSystem::news_article()).empty());
  for (MultimediaDocument doc : docs) EXPECT_TRUE(sharded.add_document(std::move(doc)).empty());
  sharded.start();
  ShardedClient sharded_client(sharded);

  std::vector<DocumentId> ids = direct_sys.catalog.list();
  const std::vector<ClientMachine> clients = make_clients(kClients);

  Rng rng(0x5eed5);
  std::vector<std::pair<SessionId, SessionId>> open;  // (direct, sharded)
  for (std::uint64_t seed = 0; seed < kSeeds; ++seed) {
    NegotiationRequest req =
        tolerant_request(seed, clients[rng.below(clients.size())], ids[rng.below(ids.size())]);
    req.accept_degraded = rng.below(2) == 0;

    NegotiationResult direct_result = direct_client.submit(req);
    NegotiationResult sharded_result = sharded_client.submit(req);
    ASSERT_EQ(result_signature(direct_result), result_signature(sharded_result))
        << "seed=" << seed << " doc=" << req.document;
    ASSERT_EQ(direct_result.session_id != 0, sharded_result.session_id != 0) << "seed=" << seed;
    if (direct_result.session_id != 0) {
      open.emplace_back(direct_result.session_id, sharded_result.session_id);
    }

    // Recycle capacity identically on both sides, so later seeds exercise
    // congestion and refusal paths too.
    if (!open.empty() && rng.chance(0.35)) {
      const std::size_t pick = static_cast<std::size_t>(rng.below(open.size()));
      direct_sys.sessions->complete(open[pick].first);
      sharded.sessions().complete(open[pick].second);
      open.erase(open.begin() + static_cast<std::ptrdiff_t>(pick));
    }
  }

  for (const auto& [direct_id, sharded_id] : open) {
    direct_sys.sessions->complete(direct_id);
    sharded.sessions().complete(sharded_id);
  }
  direct.stop();
  sharded.stop();
  EXPECT_TRUE(direct_sys.drained());
  EXPECT_TRUE(sharded.drained());
}

// --- cross-shard commits ----------------------------------------------------

TEST(ShardedFederation, CrossShardDocumentReservesOnBothShardsAndDrains) {
  ShardedService sharded(two_shard_specs(4));
  EXPECT_TRUE(sharded.add_document(cross_document("cross", "server-a", "server-b")).empty());
  sharded.start();
  ShardedClient client(sharded);
  const std::vector<ClientMachine> clients = make_clients(4);

  NegotiationResult result = client.submit(tolerant_request(1, clients[0], "cross"));
  ASSERT_EQ(result.verdict, NegotiationStatus::kSucceeded)
      << (result.problems.empty() ? "" : result.problems.front());
  ASSERT_NE(result.session_id, 0u);

  // The session's reservations span both shards: a video stream on shard
  // 0's farm, audio+text on shard 1's, and a flow in each shard's network.
  EXPECT_GT(sharded.farm(0).find("server-a")->usage().reserved_bps, 0);
  EXPECT_GT(sharded.farm(1).find("server-b")->usage().reserved_bps, 0);
  EXPECT_GT(sharded.transport(0).active_flows(), 0u);
  EXPECT_GT(sharded.transport(1).active_flows(), 0u);

  const std::size_t home = sharded.home_of("cross");
  EXPECT_GE(sharded.shard_metrics().cross_commits[home]->value(), 1u);
  EXPECT_GE(sharded.shard_metrics().forwarded[1 - home]->value(), 1u);

  sharded.sessions().complete(result.session_id);
  sharded.stop();
  EXPECT_TRUE(sharded.drained());
}

TEST(ShardedFederation, InjectedMidWalkFaultsNeverLeakReservations) {
  // Property: no matter where a fault interrupts the cross-shard walk, the
  // partial reservations are rolled back on every shard — conservation
  // holds globally after every negotiate. Faulty decorators wrap both
  // shards' farms AND transports, so the walk can die before, between and
  // after the shard boundary.
  for (std::uint64_t seed = 1; seed <= 40; ++seed) {
    ShardDirectory directory(2);
    ServerFarm farm0;
    ServerFarm farm1;
    for (int k = 0; k < 2; ++k) {
      MediaServerConfig server;
      server.id = k == 0 ? "server-a" : "server-b";
      server.node = "server-node-" + std::to_string(k);
      server.disk_bandwidth_bps = 100'000'000;
      server.max_sessions = 32;
      directory.register_server(server.id, static_cast<std::size_t>(k));
      directory.register_node(server.node, static_cast<std::size_t>(k));
      (k == 0 ? farm0 : farm1).add(std::move(server));
    }
    TransportService t0(Topology::dumbbell(1, 2, 50'000'000, 200'000'000));
    TransportService t1(Topology::dumbbell(1, 2, 50'000'000, 200'000'000));

    FaultPlan plan;
    plan.seed = seed;
    plan.server_defaults.transient_failure_p = 0.45;
    plan.transport_defaults.transient_failure_p = 0.35;
    FaultyServerFarm faulty_farm0(farm0, plan);
    FaultyServerFarm faulty_farm1(farm1, plan);
    FaultyTransportProvider faulty_t0(t0, plan);
    FaultyTransportProvider faulty_t1(t1, plan);

    FederatedFarm fed_farm(directory, {&faulty_farm0, &faulty_farm1});
    FederatedTransport fed_transport(directory, {&faulty_t0, &faulty_t1});

    Catalog catalog;
    catalog.add(cross_document("cross", "server-a", "server-b"));
    catalog.add(TestSystem::news_article());

    NegotiationConfig config;
    config.retry.max_attempts = 2;
    config.committer_factory = [&](const RetryPolicy& retry, SessionClass session_class) {
      return std::make_unique<FederatedCommitter>(fed_farm, fed_transport, directory, retry,
                                                  session_class, /*home=*/0, nullptr);
    };
    QoSManager manager(catalog, fed_farm, fed_transport, CostModel{}, config);
    const ClientMachine client = make_clients(1)[0];

    int committed = 0;
    for (std::uint64_t i = 0; i < 12; ++i) {
      NegotiationRequest req =
          tolerant_request(i, client, i % 2 == 0 ? "cross" : DocumentId("article"));
      NegotiationResult result = manager.negotiate(req);
      if (result.has_commitment()) {
        ++committed;
        result.commitment.release();
      }
      // The invariant under fire: nothing may remain reserved anywhere.
      EXPECT_EQ(farm0.find("server-a")->usage().reserved_bps, 0) << "seed=" << seed;
      EXPECT_EQ(farm1.find("server-b")->usage().reserved_bps, 0) << "seed=" << seed;
      EXPECT_EQ(t0.active_flows(), 0u) << "seed=" << seed;
      EXPECT_EQ(t1.active_flows(), 0u) << "seed=" << seed;
      EXPECT_EQ(t0.total_reserved_bps(), 0) << "seed=" << seed;
      EXPECT_EQ(t1.total_reserved_bps(), 0) << "seed=" << seed;
      EXPECT_TRUE(t0.accounting_consistent()) << "seed=" << seed;
      EXPECT_TRUE(t1.accounting_consistent()) << "seed=" << seed;
    }
    // Sanity: the fault rates still let some negotiations through, so both
    // the success and the rollback paths were actually exercised.
    EXPECT_GT(committed, 0) << "seed=" << seed;
  }
}

// --- the wire-side router ---------------------------------------------------

/// One loopback backend: a full unsharded world behind a real qosnpd.
struct WireBackend {
  ServiceSystem sys;
  std::unique_ptr<NegotiationService> service;
  std::unique_ptr<WireServer> server;

  explicit WireBackend(std::size_t max_connections = 256) : sys(4) {
    NodeConfig node;
    node.max_connections(max_connections);
    service = std::make_unique<NegotiationService>(*sys.manager, *sys.sessions, node.service());
    service->start();
    server = std::make_unique<WireServer>(*service, node.wire_server());
    server->start();
  }

  ~WireBackend() {
    server->stop();
    service->stop();
  }
};

WireClientConfig backend_config(std::uint16_t port, double deadline_ms = 20'000.0) {
  WireClientConfig config;
  config.port = port;
  config.deadline_ms = deadline_ms;
  return config;
}

TEST(WireShardRouterLoopback, RoutesByConsistentHashAndAnswers) {
  WireBackend backend0;
  WireBackend backend1;
  WireShardRouterConfig config;
  config.backends = {backend_config(backend0.server->port()),
                     backend_config(backend1.server->port())};
  WireShardRouter router(config);
  ASSERT_EQ(router.shard_count(), 2u);

  // Both worlds serve "article"; requests must land on the hash-chosen one.
  std::array<WireBackend*, 2> backends{&backend0, &backend1};
  for (std::uint64_t i = 0; i < 12; ++i) {
    NegotiationRequest req = tolerant_request(i, backend0.sys.clients[i % 4], "article");
    const std::size_t home = router.home_shard(req);
    auto result = router.submit(req);
    ASSERT_TRUE(result.ok()) << result.error().to_text();
    if (result.value().session_id != 0) {
      backends[home]->sys.sessions->complete(result.value().session_id);
    }
  }
  EXPECT_EQ(router.stats().routed[0] + router.stats().routed[1], 12u);
  EXPECT_EQ(router.stats().overload_hops, 0u);
  EXPECT_EQ(router.stats().deadline_failures, 0u);
  EXPECT_TRUE(backend0.sys.drained());
  EXPECT_TRUE(backend1.sys.drained());
}

TEST(WireShardRouterLoopback, OverloadHopsToTheNextShardOnly) {
  // The home shard of "article" sheds (one connection slot, already taken);
  // the router must hop to the other shard and come back with an answer.
  const std::size_t home = ShardDirectory(2).shard_of_key("article");

  WireBackend constrained(/*max_connections=*/1);
  WireBackend spare;
  WireClient occupant(backend_config(constrained.server->port()));
  ASSERT_TRUE(occupant.ping().ok());  // takes the only slot

  WireShardRouterConfig config;
  config.backends.resize(2);
  config.backends[home] = backend_config(constrained.server->port());
  config.backends[1 - home] = backend_config(spare.server->port());
  WireShardRouter router(config);

  NegotiationRequest req = tolerant_request(1, constrained.sys.clients[0], "article");
  ASSERT_EQ(router.home_shard(req), home);
  auto result = router.submit(req);
  ASSERT_TRUE(result.ok()) << result.error().to_text();
  EXPECT_EQ(router.stats().overload_hops, 1u);
  EXPECT_EQ(router.stats().deadline_failures, 0u);
  EXPECT_EQ(router.stats().routed[home], 1u);
  if (result.value().session_id != 0) {
    spare.sys.sessions->complete(result.value().session_id);
  }
  occupant.close();
  EXPECT_TRUE(spare.sys.drained());
}

TEST(WireShardRouterLoopback, DeadlineFailsFastWithoutHopping) {
  // The home shard accepts the connection and never answers. The expired
  // deadline must surface as typed kDeadlineExceeded and must NOT be
  // retried on the other (healthy) shard: the silent home may still be
  // working on the request.
  const std::size_t home = ShardDirectory(2).shard_of_key("article");

  const int listener = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  ASSERT_GE(listener, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = 0;
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  ASSERT_EQ(::bind(listener, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)), 0);
  ASSERT_EQ(::listen(listener, 4), 0);
  socklen_t len = sizeof(addr);
  ASSERT_EQ(::getsockname(listener, reinterpret_cast<sockaddr*>(&addr), &len), 0);

  WireBackend healthy;
  WireShardRouterConfig config;
  config.backends.resize(2);
  config.backends[home] = backend_config(ntohs(addr.sin_port), /*deadline_ms=*/100.0);
  config.backends[1 - home] = backend_config(healthy.server->port());
  WireShardRouter router(config);

  NegotiationRequest req = tolerant_request(1, healthy.sys.clients[0], "article");
  auto result = router.submit(req);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().code, WireErrorCode::kDeadlineExceeded);
  EXPECT_EQ(router.stats().deadline_failures, 1u);
  EXPECT_EQ(router.stats().overload_hops, 0u);  // no hop: the other shard was never asked
  ::close(listener);
  EXPECT_TRUE(healthy.sys.drained());
}

// --- the population over the federation -------------------------------------

TEST(ShardedPopulation, SingleShardBackendMatchesServiceBackend) {
  auto corpus_documents = [] {
    CorpusConfig corpus;
    corpus.seed = 7;
    corpus.num_documents = 6;
    corpus.min_duration_s = 30.0;
    corpus.max_duration_s = 120.0;
    return generate_corpus(corpus);
  };
  auto population_config = [](const std::vector<ClientMachine>& clients) {
    PopulationConfig config;
    config.classes = standard_population();
    for (std::size_t i = 0; i < config.classes.size(); ++i) {
      config.classes[i].machine.node = clients[i].node;
    }
    config.duration_s = 60.0;
    config.seed = 13;
    return config;
  };
  NodeConfig node;
  node.workers(4).auto_confirm(false);  // Step 6 belongs to the population

  // In-process service twin.
  ServiceSystem direct_sys(3);
  for (auto& doc : corpus_documents()) direct_sys.catalog.add(std::move(doc));
  const std::vector<DocumentId> direct_docs = direct_sys.catalog.list();
  NegotiationService direct(*direct_sys.manager, *direct_sys.sessions, node.service());
  direct.start();
  ServicePopulationBackend direct_backend(direct);
  const PopulationMetrics in_process =
      Population(population_config(direct_sys.clients), direct_backend, direct_docs).run();
  direct.stop();

  // One-shard federation twin: same seed, every negotiation routed.
  std::vector<ShardSpec> specs(1);
  for (int i = 0; i < 2; ++i) {
    MediaServerConfig server;
    server.id = i == 0 ? "server-a" : "server-b";
    server.node = "server-node-" + std::to_string(i);
    server.disk_bandwidth_bps = 10'000'000'000;
    server.max_sessions = 100'000;
    specs[0].servers.push_back(std::move(server));
  }
  specs[0].topology = Topology::dumbbell(3, 2, 1'000'000'000, 10'000'000'000);
  ShardedService sharded(std::move(specs), node);
  EXPECT_TRUE(sharded.add_document(TestSystem::news_article()).empty());
  for (auto& doc : corpus_documents()) EXPECT_TRUE(sharded.add_document(std::move(doc)).empty());
  sharded.start();
  ShardedPopulationBackend sharded_backend(sharded);
  const std::vector<DocumentId> sharded_docs = sharded.catalog(0).list();
  ASSERT_EQ(sharded_docs, direct_docs);
  const PopulationMetrics federated =
      Population(population_config(make_clients(3)), sharded_backend, sharded_docs).run();
  sharded.stop();

  EXPECT_TRUE(in_process.conserved()) << in_process.signature();
  EXPECT_TRUE(federated.conserved()) << federated.signature();
  EXPECT_EQ(in_process.signature(), federated.signature());
  EXPECT_TRUE(direct_sys.drained());
  EXPECT_TRUE(sharded.drained());
}

TEST(ShardedPopulation, BackendRefusesAutoConfirmingCluster) {
  ShardedService sharded(two_shard_specs(1));  // default NodeConfig auto-confirms
  EXPECT_THROW((ShardedPopulationBackend{sharded}), std::invalid_argument);
}

}  // namespace
}  // namespace qosnp
