// E9 — Offer-space growth (paper Sec. 5.1 drawback (2): "Many offers may be
// produced for a given request"). Google-benchmark microbenchmarks of the
// negotiation pipeline stages as the per-monomedia variant count and the
// number of monomedia grow: the offer space is their cartesian product.
// Also compares serial vs thread-pool classification, the hpc angle of the
// reproduction, and the end-to-end negotiation latency.
#include <benchmark/benchmark.h>

#include <memory>

#include "core/classify.hpp"
#include "core/enumerate.hpp"
#include "core/qos_manager.hpp"
#include "document/catalog.hpp"
#include "document/corpus.hpp"
#include "server/media_server.hpp"
#include "util/rng.hpp"

namespace {

using namespace qosnp;

/// A document with `monomedia` video tracks of `variants` variants each:
/// offer space = variants^monomedia.
MultimediaDocument synthetic_doc(int monomedia, int variants) {
  MultimediaDocument doc;
  doc.id = "synthetic";
  doc.copyright_cost = Money::cents(25);
  Rng rng(1234);
  static constexpr ColorDepth kColors[] = {ColorDepth::kBlackWhite, ColorDepth::kGray,
                                           ColorDepth::kColor, ColorDepth::kSuperColor};
  static constexpr int kRates[] = {10, 15, 25, 30};
  static constexpr int kRes[] = {320, 640, 1280};
  for (int m = 0; m < monomedia; ++m) {
    Monomedia video;
    video.id = "synthetic/video" + std::to_string(m);
    video.kind = MediaKind::kVideo;
    video.duration_s = 120.0;
    for (int v = 0; v < variants; ++v) {
      VideoQoS qos{kColors[rng.below(4)], kRates[rng.below(4)], kRes[rng.below(3)]};
      video.variants.push_back(make_video_variant(video.id + "/v" + std::to_string(v), qos,
                                                  CodingFormat::kMPEG1, 120.0,
                                                  v % 2 ? "server-a" : "server-b"));
    }
    doc.monomedia.push_back(std::move(video));
  }
  return doc;
}

ClientMachine capable_client() {
  ClientMachine c;
  c.name = "client-0";
  c.node = "client-0";
  c.decoders = {CodingFormat::kMPEG1, CodingFormat::kPCM, CodingFormat::kPlainText,
                CodingFormat::kJPEG};
  return c;
}

UserProfile video_profile() {
  UserProfile p = default_user_profile();
  p.mm.audio.reset();
  p.mm.text.reset();
  p.mm.image.reset();
  return p;
}

struct Prepared {
  std::shared_ptr<const MultimediaDocument> doc;
  ClientMachine client = capable_client();
  UserProfile profile = video_profile();
  OfferList offers;
};

Prepared prepare(int monomedia, int variants) {
  Prepared prep;
  prep.doc = std::make_shared<const MultimediaDocument>(synthetic_doc(monomedia, variants));
  auto feasible = compatible_variants(prep.doc, prep.client, prep.profile.mm);
  EnumerationConfig config;
  config.max_offers = 200'000;
  prep.offers = enumerate_offers(feasible.value(), prep.profile.mm, CostModel{}, config);
  return prep;
}

void BM_Enumerate(benchmark::State& state) {
  const int monomedia = static_cast<int>(state.range(0));
  const int variants = static_cast<int>(state.range(1));
  Prepared prep = prepare(monomedia, variants);
  auto feasible = compatible_variants(prep.doc, prep.client, prep.profile.mm);
  EnumerationConfig config;
  config.max_offers = 200'000;
  for (auto _ : state) {
    OfferList list = enumerate_offers(feasible.value(), prep.profile.mm, CostModel{}, config);
    benchmark::DoNotOptimize(list.offers.data());
  }
  state.counters["offers"] = static_cast<double>(prep.offers.offers.size());
}
BENCHMARK(BM_Enumerate)
    ->Args({1, 4})
    ->Args({2, 8})
    ->Args({3, 8})
    ->Args({4, 12})
    ->Unit(benchmark::kMicrosecond);

void BM_ClassifySerial(benchmark::State& state) {
  const int monomedia = static_cast<int>(state.range(0));
  const int variants = static_cast<int>(state.range(1));
  Prepared prep = prepare(monomedia, variants);
  for (auto _ : state) {
    auto offers = prep.offers.offers;
    classify_offers(offers, prep.profile.mm, prep.profile.importance);
    benchmark::DoNotOptimize(offers.data());
  }
  state.counters["offers"] = static_cast<double>(prep.offers.offers.size());
}
BENCHMARK(BM_ClassifySerial)
    ->Args({2, 8})
    ->Args({3, 8})
    ->Args({4, 12})
    ->Unit(benchmark::kMicrosecond);

void BM_ClassifyParallel(benchmark::State& state) {
  const int monomedia = static_cast<int>(state.range(0));
  const int variants = static_cast<int>(state.range(1));
  Prepared prep = prepare(monomedia, variants);
  ThreadPool& pool = ThreadPool::shared();
  for (auto _ : state) {
    auto offers = prep.offers.offers;
    classify_offers(offers, prep.profile.mm, prep.profile.importance, {}, &pool);
    benchmark::DoNotOptimize(offers.data());
  }
  state.counters["offers"] = static_cast<double>(prep.offers.offers.size());
}
BENCHMARK(BM_ClassifyParallel)
    ->Args({2, 8})
    ->Args({3, 8})
    ->Args({4, 12})
    ->Unit(benchmark::kMicrosecond);

void BM_NegotiateEndToEnd(benchmark::State& state) {
  const int monomedia = static_cast<int>(state.range(0));
  const int variants = static_cast<int>(state.range(1));
  Catalog catalog;
  catalog.add(synthetic_doc(monomedia, variants));
  TransportService transport(Topology::dumbbell(1, 2, 1'000'000'000, 10'000'000'000));
  ServerFarm farm;
  for (int i = 0; i < 2; ++i) {
    MediaServerConfig config;
    config.id = i == 0 ? "server-a" : "server-b";
    config.node = "server-node-" + std::to_string(i);
    config.disk_bandwidth_bps = 100'000'000'000;
    config.max_sessions = 1'000'000;
    farm.add(std::move(config));
  }
  QoSManager manager(catalog, farm, transport);
  const ClientMachine client = capable_client();
  const UserProfile profile = video_profile();
  for (auto _ : state) {
    NegotiationResult outcome = manager.negotiate(make_negotiation_request(client, "synthetic", profile));
    benchmark::DoNotOptimize(outcome.verdict);
    // Release so the next iteration starts from a clean slate.
    outcome.commitment.release();
  }
}
BENCHMARK(BM_NegotiateEndToEnd)
    ->Args({1, 4})
    ->Args({2, 8})
    ->Args({3, 8})
    ->Unit(benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();
