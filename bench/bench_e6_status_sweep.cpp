// E6 — The five negotiation statuses of paper Sec. 4. Sweeps client
// capability and load regimes and reports how often each status occurs,
// demonstrating that every branch of the procedure is exercised:
//   SUCCEEDED            — requirements met and resources reserved
//   FAILEDWITHOFFER      — only a non-satisfying offer could be committed
//   FAILEDTRYLATER       — resource shortage
//   FAILEDWITHOUTOFFER   — no decodable variant for this client
//   FAILEDWITHLOCALOFFER — client hardware below the worst-acceptable QoS
#include "sim/experiment.hpp"

#include "bench_util.hpp"

namespace {

using namespace qosnp;
using namespace qosnp::bench;

ExperimentConfig base_config() {
  ExperimentConfig config;
  config.corpus.num_documents = 40;
  config.corpus.seed = 21;
  config.num_clients = 12;
  config.sim_duration_s = 2'000.0;
  config.seed = 5;
  return config;
}

std::vector<std::string> status_row(const std::string& label, const SimMetrics& m) {
  return {label,
          std::to_string(m.arrivals),
          pct(static_cast<double>(m.count(NegotiationStatus::kSucceeded)) /
              static_cast<double>(m.arrivals)),
          pct(static_cast<double>(m.count(NegotiationStatus::kFailedWithOffer)) /
              static_cast<double>(m.arrivals)),
          pct(static_cast<double>(m.count(NegotiationStatus::kFailedTryLater)) /
              static_cast<double>(m.arrivals)),
          pct(static_cast<double>(m.count(NegotiationStatus::kFailedWithoutOffer)) /
              static_cast<double>(m.arrivals)),
          pct(static_cast<double>(m.count(NegotiationStatus::kFailedWithLocalOffer)) /
              static_cast<double>(m.arrivals))};
}

}  // namespace

int main() {
  print_title("E6: Negotiation status frequencies across regimes (Sec. 4)");

  Table table({"regime", "arrivals", "SUCCEEDED", "WITHOFFER", "TRYLATER", "WITHOUTOFFER",
               "LOCALOFFER"});

  // Regime 1: capable clients, light load — mostly SUCCEEDED.
  {
    ExperimentConfig config = base_config();
    config.arrival_rate_per_s = 0.05;
    table.row(status_row("capable clients, light load", run_experiment(config).metrics));
  }
  // Regime 2: capable clients, heavy load on a thin backbone — TRYLATER and
  // degraded offers appear.
  {
    ExperimentConfig config = base_config();
    config.arrival_rate_per_s = 0.8;
    config.backbone_bps = 50'000'000;
    config.server_disk_bps = 60'000'000;
    table.row(status_row("capable clients, heavy load", run_experiment(config).metrics));
  }
  // Regime 3: half the clients are limited terminals (grey 640px screens,
  // MPEG-1-only) with demanding profiles — local and compatibility failures.
  {
    ExperimentConfig config = base_config();
    config.arrival_rate_per_s = 0.2;
    config.limited_client_fraction = 0.5;
    UserProfile demanding = standard_profile_mix()[0];
    demanding.mm.video->worst = VideoQoS{ColorDepth::kColor, 15, 640};
    config.profiles = {demanding, standard_profile_mix()[1]};
    table.row(status_row("50% limited clients, demanding", run_experiment(config).metrics));
  }
  // Regime 4: greedy floors nothing in the corpus reaches — FAILEDWITHOFFER
  // dominates (the system still serves its best).
  {
    ExperimentConfig config = base_config();
    config.arrival_rate_per_s = 0.1;
    UserProfile greedy = standard_profile_mix()[0];
    greedy.mm.video->desired = VideoQoS{ColorDepth::kSuperColor, 60, 1920};
    greedy.mm.video->worst = VideoQoS{ColorDepth::kSuperColor, 60, 1920};
    config.profiles = {greedy};
    table.row(status_row("unsatisfiable QoS floor", run_experiment(config).metrics));
  }
  table.print();

  std::cout << "\nEach of the five statuses appears in the regime designed to trigger it;\n"
               "the procedure degrades gracefully (FAILEDWITHOFFER) instead of rejecting\n"
               "whenever any feasible configuration exists.\n";
  return 0;
}
