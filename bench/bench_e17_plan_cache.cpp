// E17 — Cross-request negotiation plan cache (extension; the paper's
// prototype rebuilt Steps 1-4 for every request). A hot-document closed
// loop negotiates the same wide-ladder document back to back against twin
// stacks — one QoSManager with a NegotiationPlanCache, one without —
// alternating sides request by request so frequency scaling and allocator
// drift land on both sample pools alike. Every request runs with a live
// per-request trace (tracing enabled), and the traces are audited for the
// plan-cache span.
//
// Self-checks (non-zero exit on failure):
//   1. Eager strategy (the one that materialises and classifies the full
//      offer product per request, i.e. where Steps 1-4 dominate): cached
//      p50 negotiate() latency is >= 5x faster than uncached on the hot
//      document. The default best-first strategy is reported alongside:
//      its Steps 1-4 are already lazy, so the cache saves less there.
//   2. The cache's conservation law after every run: lookups == hits +
//      misses, with hits > 0 (the loop actually replayed plans).
//   3. Every trace on the cached side carries a plan-cache span, and all
//      but the first say hit=true.
//   4. Both stacks drain clean once results are dropped: every server and
//      link reservation released.
#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "bench_util.hpp"
#include "core/plan_cache.hpp"
#include "test_service.hpp"
#include "util/stopwatch.hpp"

namespace {

using namespace qosnp;
using namespace qosnp::bench;
using qosnp::testing::ServiceSystem;
using qosnp::testing::TestSystem;

// A very wide variant ladder (144 video x 4 audio x 4 text variants, 2304
// combinations): Steps 1-4 (compatibility + classification precomputation)
// dominate the uncached request, which is exactly the work the cache
// amortises. Step 5 commits the first offer either way.
MultimediaDocument hot_article() {
  MultimediaDocument doc;
  doc.id = "hot";
  doc.title = "Hot wide-ladder article";
  doc.copyright_cost = Money::cents(50);
  const double duration = 120.0;

  Monomedia video;
  video.id = "hot/video";
  video.kind = MediaKind::kVideo;
  video.duration_s = duration;
  int v = 0;
  for (const ColorDepth depth :
       {ColorDepth::kColor, ColorDepth::kGray, ColorDepth::kBlackWhite}) {
    for (const int rate : {30, 25, 20, 15, 12, 10}) {
      for (const int width : {1920, 1280, 640, 320}) {
        for (const char* server : {"server-a", "server-b"}) {
          video.variants.push_back(
              make_video_variant("hot/video/" + std::to_string(v++),
                                 VideoQoS{depth, rate, width}, CodingFormat::kMPEG1, duration,
                                 server));
        }
      }
    }
  }
  doc.monomedia.push_back(std::move(video));

  Monomedia audio;
  audio.id = "hot/audio";
  audio.kind = MediaKind::kAudio;
  audio.duration_s = duration;
  int a = 0;
  for (const AudioQuality quality : {AudioQuality::kCD, AudioQuality::kTelephone}) {
    for (const char* server : {"server-a", "server-b"}) {
      audio.variants.push_back(make_audio_variant(
          "hot/audio/" + std::to_string(a++), quality,
          quality == AudioQuality::kCD ? CodingFormat::kPCM : CodingFormat::kADPCM, duration,
          server));
    }
  }
  doc.monomedia.push_back(std::move(audio));

  Monomedia text;
  text.id = "hot/text";
  text.kind = MediaKind::kText;
  int t = 0;
  for (const Language language : {Language::kEnglish, Language::kFrench}) {
    for (const char* server : {"server-a", "server-b"}) {
      text.variants.push_back(make_text_variant("hot/text/" + std::to_string(t++), language,
                                                CodingFormat::kPlainText, 8'000, server));
    }
  }
  doc.monomedia.push_back(std::move(text));
  return doc;
}

double exact_p50(std::vector<double> samples) {
  if (samples.empty()) return 0.0;
  std::sort(samples.begin(), samples.end());
  const std::size_t index =
      static_cast<std::size_t>(std::ceil(0.5 * static_cast<double>(samples.size()))) - 1;
  return samples[std::min(index, samples.size() - 1)];
}

struct SpanAudit {
  std::size_t traces = 0;
  std::size_t with_cache_span = 0;
  std::size_t hit_spans = 0;
};

struct CacheComparison {
  double p50_cached_us = 0.0;
  double p50_plain_us = 0.0;
  PlanCacheStats stats;
  SpanAudit audit;
  bool drained = false;

  double speedup() const { return p50_cached_us > 0.0 ? p50_plain_us / p50_cached_us : 0.0; }
  bool conserved() const { return stats.lookups == stats.hits + stats.misses && stats.hits > 0; }
};

// Twin stacks (independent farms and transports, so resource state on one
// side never shapes the other); the closed loop times negotiate() itself,
// one outstanding request at a time, with a live trace per request. Each
// result is dropped before the next request, so Step 5 always commits
// against a drained farm on both sides.
CacheComparison measure(EnumerationStrategy strategy) {
  NegotiationConfig cached_cfg;
  cached_cfg.enumeration.strategy = strategy;
  cached_cfg.parallel_threshold = 0;  // keep the work single-threaded on both sides
  NegotiationConfig plain_cfg = cached_cfg;
  auto cache = std::make_shared<NegotiationPlanCache>();
  cached_cfg.plan_cache = cache;

  ServiceSystem cached_sys(4, 1'000'000'000, 10'000'000'000, 10'000'000'000, 100'000,
                           std::move(cached_cfg));
  ServiceSystem plain_sys(4, 1'000'000'000, 10'000'000'000, 10'000'000'000, 100'000,
                          std::move(plain_cfg));
  cached_sys.catalog.add(hot_article());
  plain_sys.catalog.add(hot_article());

  const UserProfile profile = TestSystem::tolerant_profile();
  CacheComparison result;
  auto one = [&profile](QoSManager& manager, ServiceSystem& sys, std::uint64_t id,
                        SpanAudit* audit) {
    NegotiationTrace trace(id);
    const NegotiationRequest req =
        make_negotiation_request(sys.clients[0], "hot", profile, TraceContext(&trace));
    Stopwatch sw;
    const NegotiationResult r = manager.negotiate(req);
    const double us = sw.elapsed_us();
    if (audit) {
      ++audit->traces;
      if (const Span* span = trace.find(Stage::kPlanCache)) {
        ++audit->with_cache_span;
        if (span->attr("hit") == "true") ++audit->hit_spans;
      }
    }
    return us;
  };

  const std::size_t kPairs = 2'000;
  std::vector<double> on;
  std::vector<double> off;
  on.reserve(kPairs);
  off.reserve(kPairs);
  for (std::size_t i = 0; i < 200; ++i) {  // warm caches (plan + CPU) and allocator
    (void)one(*cached_sys.manager, cached_sys, 2 * i + 1, nullptr);
    (void)one(*plain_sys.manager, plain_sys, 2 * i + 2, nullptr);
  }
  for (std::size_t i = 0; i < kPairs; ++i) {
    on.push_back(one(*cached_sys.manager, cached_sys, 2 * i + 1, &result.audit));
    off.push_back(one(*plain_sys.manager, plain_sys, 2 * i + 2, nullptr));
  }

  result.p50_cached_us = exact_p50(std::move(on));
  result.p50_plain_us = exact_p50(std::move(off));
  result.stats = cache->stats();
  result.drained = cached_sys.drained() && plain_sys.drained();
  return result;
}

}  // namespace

int main() {
  print_title("E17: Cross-request plan cache (hot-document closed loop, tracing on)");
  std::cout << "(2000 measured pairs, 2304-combination hot document; cached and uncached\n"
               " negotiate() calls alternate from one closed-loop client, trace per request)\n";

  print_section("Hot-document p50 negotiate() latency, cached vs uncached");
  const CacheComparison best_first = measure(EnumerationStrategy::kBestFirst);
  const CacheComparison eager = measure(EnumerationStrategy::kEager);
  Table table({"strategy", "p50 off us", "p50 cached us", "speedup", "hits", "misses", "stale",
               "drain"});
  table
      .row({"best-first", fmt(best_first.p50_plain_us, 2), fmt(best_first.p50_cached_us, 2),
            fmt(best_first.speedup(), 1) + "x", std::to_string(best_first.stats.hits),
            std::to_string(best_first.stats.misses), std::to_string(best_first.stats.stale),
            check(best_first.drained)})
      .row({"eager", fmt(eager.p50_plain_us, 2), fmt(eager.p50_cached_us, 2),
            fmt(eager.speedup(), 1) + "x", std::to_string(eager.stats.hits),
            std::to_string(eager.stats.misses), std::to_string(eager.stats.stale),
            check(eager.drained)})
      .print();

  const bool fast = eager.speedup() >= 5.0;
  std::cout << "\nClaim: replaying cached Steps 1-4 makes the hot-document p50 >= 5x faster\n"
               "than rebuilding them per request under the eager strategy, where the full\n"
               "offer product is enumerated and classified per request. (Best-first is\n"
               "already lazy about Steps 3-4, so its rebuild is cheap and the cache saves\n"
               "proportionally less.) Measured: " << fmt(eager.speedup(), 1) << "x, best-first "
            << fmt(best_first.speedup(), 1) << "x   [" << check(fast) << "]\n";

  const bool conserved = best_first.conserved() && eager.conserved();
  std::cout << "\nClaim: the counters conserve lookups (lookups == hits + misses, hits > 0)\n"
               "on both runs   [" << check(conserved) << "]\n";

  print_section("Plan-cache span audit (cached side)");
  Table spans({"strategy", "traces", "with span", "hit=true"});
  spans
      .row({"best-first", std::to_string(best_first.audit.traces),
            std::to_string(best_first.audit.with_cache_span),
            std::to_string(best_first.audit.hit_spans)})
      .row({"eager", std::to_string(eager.audit.traces),
            std::to_string(eager.audit.with_cache_span),
            std::to_string(eager.audit.hit_spans)})
      .print();
  const bool spanned =
      best_first.audit.traces > 0 &&
      best_first.audit.with_cache_span == best_first.audit.traces &&
      best_first.audit.hit_spans == best_first.audit.traces && eager.audit.traces > 0 &&
      eager.audit.with_cache_span == eager.audit.traces &&
      eager.audit.hit_spans == eager.audit.traces;
  std::cout << "\nClaim: every traced request on the cached side shows the plan-cache stage\n"
               "with hit=true (the plan was stored during warmup)   [" << check(spanned)
            << "]\n";

  const bool drained = best_first.drained && eager.drained;
  return fast && conserved && spanned && drained ? 0 : 1;
}
