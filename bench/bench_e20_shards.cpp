// E20 — Horizontally sharded negotiation federation (extension; the paper's
// prototype was one QoS manager). N complete negotiation verticals —
// catalog partition, farm, transport, manager, worker pool — behind one
// consistent-hash router, cross-shard documents committed by the
// FederatedCommitter (reserve on each owning shard in deterministic shard
// order, rollback on refusal, nothing leaks).
//
// Self-checks (non-zero exit on failure):
//   1. Scaling: closed-loop negotiated throughput at 8 shards is >= 3x the
//      single-shard figure under the E16 load shape (simulated per-request
//      RTT, capacity-rich farms), with the qosnp_shard_* balance law and
//      the drain invariant holding after every run.
//   2. Degeneracy: with one shard, the same-seed request stream produces
//      byte-identical results (result signature) to the unsharded service.
//   3. Conservation under cross-shard faults: a foreign shard's server is
//      failed mid-experiment; every partial cross-shard walk rolls back
//      (federated_rollbacks > 0), nothing stays reserved anywhere, and
//      recovery restores successful cross-shard commits.
//   4. The population simulation (E18's load shape) runs over a 4-shard
//      federation with its conservation laws intact.
#include "shard/sharded_service.hpp"

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "document/corpus.hpp"
#include "result_signature.hpp"
#include "service/service_client.hpp"
#include "shard/sharded_backend.hpp"
#include "shard/sharded_client.hpp"
#include "test_service.hpp"
#include "util/rng.hpp"

namespace {

using namespace qosnp;
using namespace qosnp::bench;
using qosnp::testing::ServiceSystem;
using qosnp::testing::TestSystem;
using qosnp::testing::result_signature;

// The scaling phase is the E16 device one level up: each shard runs ONE
// worker, so a single shard is RTT-bound at ~1/rtt rps and every added
// shard brings its own worker pool — the speedup measures federation
// capacity (overlapped negotiation RTTs), not host parallelism, and so
// holds on a single-core runner.
constexpr double kRttMs = 5.0;
constexpr std::size_t kShardWorkers = 1;
constexpr int kConcurrency = 16;
constexpr std::size_t kScalingRequests = 640;
constexpr int kScalingDocs = 64;

std::vector<ClientMachine> make_clients(int n) {
  std::vector<ClientMachine> clients;
  for (int i = 0; i < n; ++i) {
    ClientMachine c;
    c.name = "client-" + std::to_string(i);
    c.node = c.name;
    c.screen = ScreenSpec{1920, 1080, ColorDepth::kSuperColor};
    c.decoders = {CodingFormat::kMPEG1,     CodingFormat::kMPEG2,
                  CodingFormat::kMJPEG,     CodingFormat::kPCM,
                  CodingFormat::kADPCM,     CodingFormat::kMPEGAudio,
                  CodingFormat::kPlainText, CodingFormat::kJPEG,
                  CodingFormat::kGIF};
    c.max_audio = AudioQuality::kCD;
    clients.push_back(std::move(c));
  }
  return clients;
}

/// A document whose whole ladder lives on `video_server` except audio+text,
/// which live on `other_server` (pass the same id twice for a shard-local
/// document).
MultimediaDocument ladder_document(const std::string& id, const ServerId& video_server,
                                   const ServerId& other_server) {
  MultimediaDocument doc;
  doc.id = id;
  doc.title = "E20 " + id;
  doc.copyright_cost = Money::cents(10);
  const double duration = 60.0;

  Monomedia video;
  video.id = id + "/video";
  video.kind = MediaKind::kVideo;
  video.duration_s = duration;
  video.variants = {
      make_video_variant(id + "/video/hi", VideoQoS{ColorDepth::kColor, 25, 640},
                         CodingFormat::kMPEG1, duration, video_server),
      make_video_variant(id + "/video/lo", VideoQoS{ColorDepth::kBlackWhite, 10, 320},
                         CodingFormat::kMPEG1, duration, video_server),
  };
  doc.monomedia.push_back(std::move(video));

  Monomedia audio;
  audio.id = id + "/audio";
  audio.kind = MediaKind::kAudio;
  audio.duration_s = duration;
  audio.variants = {
      make_audio_variant(id + "/audio/cd", AudioQuality::kCD, CodingFormat::kPCM, duration,
                         other_server),
      make_audio_variant(id + "/audio/tel", AudioQuality::kTelephone, CodingFormat::kADPCM,
                         duration, other_server),
  };
  doc.monomedia.push_back(std::move(audio));

  Monomedia text;
  text.id = id + "/text";
  text.kind = MediaKind::kText;
  text.variants = {make_text_variant(id + "/text/en", Language::kEnglish,
                                     CodingFormat::kPlainText, 8'000, other_server)};
  doc.monomedia.push_back(std::move(text));
  return doc;
}

std::vector<ShardSpec> federation_specs(std::size_t shards, int num_clients) {
  std::vector<ShardSpec> specs(shards);
  for (std::size_t k = 0; k < shards; ++k) {
    MediaServerConfig server;
    server.id = "srv-" + std::to_string(k);
    server.node = "server-node-" + std::to_string(k);
    server.disk_bandwidth_bps = 10'000'000'000;
    server.max_sessions = 100'000;
    specs[k].servers.push_back(std::move(server));
    specs[k].topology = Topology::dumbbell(num_clients, static_cast<int>(shards),
                                           1'000'000'000, 10'000'000'000);
  }
  return specs;
}

// --- 1: throughput scaling ---------------------------------------------------

struct ScalingRun {
  double rps = 0.0;
  bool clean = false;  ///< every request succeeded, balance law held, drained
};

/// The E16 closed-loop shape over a federation of `shards`: every document
/// is shard-local (its ladder lives on its home shard's server), each
/// negotiation pays the simulated remote RTT, and kConcurrency client
/// threads keep the federation saturated through the router.
ScalingRun run_scaling(std::size_t shards) {
  ShardedService sharded(
      federation_specs(shards, kConcurrency),
      NodeConfig{}.workers(kShardWorkers).queue_capacity(64).simulated_rtt_ms(kRttMs));
  std::vector<DocumentId> docs;
  for (int i = 0; i < kScalingDocs; ++i) {
    const std::string id = "doc-" + std::to_string(i);
    const ServerId server = "srv-" + std::to_string(sharded.home_of(id));
    if (!sharded.add_document(ladder_document(id, server, server)).empty()) return {};
    docs.push_back(id);
  }
  sharded.start();
  const std::vector<ClientMachine> clients = make_clients(kConcurrency);

  std::atomic<std::uint64_t> next{0};
  std::atomic<std::uint64_t> succeeded{0};
  const auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  for (int t = 0; t < kConcurrency; ++t) {
    threads.emplace_back([&, t] {
      ShardedClient client(sharded);
      Rng rng(0xe20 + static_cast<std::uint64_t>(t));
      for (;;) {
        const std::uint64_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= kScalingRequests) return;
        NegotiationRequest req;
        req.id = i + 1;
        req.client = clients[static_cast<std::size_t>(t)];
        req.document = docs[rng.below(docs.size())];
        req.profile = TestSystem::tolerant_profile();
        NegotiationResult result = client.submit(std::move(req));
        if (result.session_id != 0) {
          ++succeeded;
          sharded.sessions().complete(result.session_id);
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  const double elapsed_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  sharded.stop();

  ScalingRun run;
  if (std::getenv("E20_DIAG") != nullptr) {
    const LatencyHistogram latency =
        sharded.metrics().histogram("qosnp_request_latency_ms").merged();
    const LatencyHistogram wait = sharded.metrics().histogram("qosnp_queue_wait_ms").merged();
    std::cout << "  [diag] N=" << shards << " latency p50=" << latency.quantile_ms(0.5)
              << "ms mean=" << latency.mean_ms() << "ms | queue wait p50="
              << wait.quantile_ms(0.5) << "ms mean=" << wait.mean_ms() << "ms | routed=";
    for (const Counter* c : sharded.shard_metrics().routed) std::cout << c->value() << ' ';
    std::cout << '\n';
  }
  run.rps = elapsed_s > 0.0 ? static_cast<double>(kScalingRequests) / elapsed_s : 0.0;
  run.clean = succeeded.load() == kScalingRequests &&
              sharded.shard_metrics().requests->value() == kScalingRequests &&
              sharded.drained();
  return run;
}

// --- 2: N=1 byte-identity ----------------------------------------------------

bool run_degeneracy() {
  constexpr int kClients = 8;
  constexpr std::uint64_t kRequests = 120;

  CorpusConfig corpus;
  corpus.seed = 11;
  corpus.num_documents = 8;
  corpus.min_duration_s = 30.0;
  corpus.max_duration_s = 90.0;
  const std::vector<MultimediaDocument> docs = generate_corpus(corpus);

  ServiceSystem direct_sys(kClients, 50'000'000, 200'000'000, 100'000'000, 32);
  for (MultimediaDocument doc : docs) direct_sys.catalog.add(std::move(doc));
  const NodeConfig node;
  NegotiationService direct(*direct_sys.manager, *direct_sys.sessions, node.service());
  direct.start();
  ServiceClient direct_client(direct);

  std::vector<ShardSpec> specs(1);
  for (int i = 0; i < 2; ++i) {
    MediaServerConfig server;
    server.id = i == 0 ? "server-a" : "server-b";
    server.node = "server-node-" + std::to_string(i);
    server.disk_bandwidth_bps = 100'000'000;
    server.max_sessions = 32;
    specs[0].servers.push_back(std::move(server));
  }
  specs[0].topology = Topology::dumbbell(kClients, 2, 50'000'000, 200'000'000);
  ShardedService sharded(std::move(specs), node);
  if (!sharded.add_document(TestSystem::news_article()).empty()) return false;
  for (MultimediaDocument doc : docs) {
    if (!sharded.add_document(std::move(doc)).empty()) return false;
  }
  sharded.start();
  ShardedClient sharded_client(sharded);

  const std::vector<DocumentId> ids = direct_sys.catalog.list();
  const std::vector<ClientMachine> clients = make_clients(kClients);
  Rng rng(0x1de);
  bool identical = true;
  std::vector<std::pair<SessionId, SessionId>> open;
  for (std::uint64_t i = 0; i < kRequests; ++i) {
    NegotiationRequest req;
    req.id = i;
    req.client = clients[rng.below(clients.size())];
    req.document = ids[rng.below(ids.size())];
    req.profile = TestSystem::tolerant_profile();
    NegotiationResult a = direct_client.submit(req);
    NegotiationResult b = sharded_client.submit(req);
    identical = identical && result_signature(a) == result_signature(b) &&
                (a.session_id != 0) == (b.session_id != 0);
    if (a.session_id != 0) open.emplace_back(a.session_id, b.session_id);
    if (!open.empty() && rng.chance(0.35)) {
      const std::size_t pick = static_cast<std::size_t>(rng.below(open.size()));
      direct_sys.sessions->complete(open[pick].first);
      sharded.sessions().complete(open[pick].second);
      open.erase(open.begin() + static_cast<std::ptrdiff_t>(pick));
    }
  }
  for (const auto& [a, b] : open) {
    direct_sys.sessions->complete(a);
    sharded.sessions().complete(b);
  }
  direct.stop();
  sharded.stop();
  return identical && direct_sys.drained() && sharded.drained();
}

// --- 3: cross-shard conservation under faults --------------------------------

struct FaultRun {
  std::uint64_t healthy_successes = 0;
  std::uint64_t outage_successes = 0;
  std::uint64_t recovered_successes = 0;
  std::uint64_t rollbacks = 0;
  std::uint64_t cross_commits = 0;
  bool drained = false;

  bool conserves() const {
    return healthy_successes > 0 && outage_successes == 0 && recovered_successes > 0 &&
           rollbacks > 0 && cross_commits > 0 && drained;
  }
};

FaultRun run_cross_shard_faults() {
  constexpr std::size_t kShards = 4;
  constexpr std::size_t kForeign = 3;  // the shard whose server we fail
  ShardedService sharded(federation_specs(kShards, kConcurrency),
                         NodeConfig{}.workers(4).queue_capacity(64));

  // Cross-shard documents: video on the document's own home shard, audio +
  // text always on the foreign shard. The walk reserves the home shard
  // first (ascending shard order), so failing the foreign server leaves a
  // partial reservation that MUST roll back.
  std::vector<DocumentId> docs;
  for (int i = 0; docs.size() < 8 && i < 200; ++i) {
    const std::string id = "xdoc-" + std::to_string(i);
    const std::size_t home = sharded.home_of(id);
    if (home == kForeign) continue;  // keep home strictly before the foreign shard
    if (!sharded.add_document(
             ladder_document(id, "srv-" + std::to_string(home), "srv-" + std::to_string(kForeign)))
             .empty()) {
      return {};
    }
    docs.push_back(id);
  }
  sharded.start();
  const std::vector<ClientMachine> clients = make_clients(8);

  auto batch = [&](std::uint64_t base) {
    std::atomic<std::uint64_t> successes{0};
    std::mutex mu;
    std::vector<SessionId> opened;
    std::vector<std::thread> threads;
    for (int t = 0; t < 8; ++t) {
      threads.emplace_back([&, t] {
        ShardedClient client(sharded);
        Rng rng(base + static_cast<std::uint64_t>(t));
        for (int i = 0; i < 8; ++i) {
          NegotiationRequest req;
          req.id = base + static_cast<std::uint64_t>(t * 100 + i);
          req.client = clients[static_cast<std::size_t>(t)];
          req.document = docs[rng.below(docs.size())];
          req.profile = TestSystem::tolerant_profile();
          NegotiationResult result = client.submit(std::move(req));
          if (result.session_id != 0) {
            ++successes;
            std::lock_guard<std::mutex> lock(mu);
            opened.push_back(result.session_id);
          }
        }
      });
    }
    for (auto& thread : threads) thread.join();
    for (SessionId id : opened) sharded.sessions().complete(id);
    return successes.load();
  };

  FaultRun run;
  run.healthy_successes = batch(1'000);
  sharded.farm(kForeign).find("srv-" + std::to_string(kForeign))->fail();
  run.outage_successes = batch(2'000);  // every walk dies on the foreign shard
  sharded.farm(kForeign).find("srv-" + std::to_string(kForeign))->recover();
  run.recovered_successes = batch(3'000);
  sharded.stop();

  run.rollbacks = sharded.shard_metrics().federated_rollbacks->value();
  for (const Counter* c : sharded.shard_metrics().cross_commits) run.cross_commits += c->value();
  run.drained = sharded.drained();
  return run;
}

// --- 4: the population over the federation -----------------------------------

bool run_population() {
  constexpr std::size_t kShards = 4;
  ShardedService sharded(federation_specs(kShards, 3),
                         NodeConfig{}.workers(4).auto_confirm(false));
  CorpusConfig corpus;
  corpus.seed = 7;
  corpus.num_documents = 8;
  corpus.min_duration_s = 30.0;
  corpus.max_duration_s = 120.0;
  corpus.servers.clear();
  for (std::size_t k = 0; k < kShards; ++k) corpus.servers.push_back("srv-" + std::to_string(k));
  for (auto& doc : generate_corpus(corpus)) {
    if (!sharded.add_document(std::move(doc)).empty()) return false;
  }
  std::vector<DocumentId> docs;
  for (std::size_t k = 0; k < kShards; ++k) {
    for (const DocumentId& id : sharded.catalog(k).list()) docs.push_back(id);
  }
  sharded.start();

  PopulationConfig config;
  config.classes = standard_population();
  const std::vector<ClientMachine> clients = make_clients(3);
  for (std::size_t i = 0; i < config.classes.size(); ++i) {
    config.classes[i].machine.node = clients[i].node;
  }
  config.duration_s = 60.0;
  config.seed = 13;
  ShardedPopulationBackend backend(sharded);
  const PopulationMetrics metrics = Population(config, backend, docs).run();
  sharded.stop();
  return metrics.conserved() && sharded.drained() && sharded.shard_metrics().balanced();
}

}  // namespace

int main() {
  print_title("E20: Sharded QoS-manager federation (consistent-hash router + federated commit)");
  std::cout << "(closed loop, " << kConcurrency << " client threads, " << kScalingRequests
            << " requests, simulated RTT " << kRttMs << " ms, " << kShardWorkers
            << " worker per shard,\n"
            << kScalingDocs << " shard-local documents; capacity-rich farms)\n";

  print_section("Shard scaling (E16 load shape through the router)");
  Table scaling({"shards", "rps", "speedup", "clean"});
  double rps_1 = 0.0;
  double rps_8 = 0.0;
  bool all_clean = true;
  for (const std::size_t shards : {1u, 2u, 4u, 8u}) {
    const ScalingRun run = run_scaling(shards);
    if (shards == 1) rps_1 = run.rps;
    if (shards == 8) rps_8 = run.rps;
    scaling.row({std::to_string(shards), fmt(run.rps, 0),
                 rps_1 > 0.0 ? fmt(run.rps / rps_1, 2) + "x" : "-", check(run.clean)});
    all_clean = all_clean && run.clean;
  }
  scaling.print();
  const double speedup = rps_1 > 0.0 ? rps_8 / rps_1 : 0.0;
  const bool scales = speedup >= 3.0;
  std::cout << "\nClaim: 8 independent verticals behind the router sustain >= 3x the\n"
               "single-shard negotiated throughput. Measured: " << fmt(speedup, 1) << "x   ["
            << check(scales) << "]\n";

  print_section("Degeneracy (one shard == the unsharded service, same seed)");
  const bool identical = run_degeneracy();
  std::cout << "Claim: ShardedClient(N=1) is byte-identical (result signature) to the\n"
               "unsharded ServiceClient over a 120-request mixed stream   ["
            << check(identical) << "]\n";

  print_section("Cross-shard conservation under a foreign-shard outage");
  const FaultRun faults = run_cross_shard_faults();
  Table fault_table({"phase", "successes"});
  fault_table.row({"healthy", std::to_string(faults.healthy_successes)})
      .row({"foreign server failed", std::to_string(faults.outage_successes)})
      .row({"recovered", std::to_string(faults.recovered_successes)})
      .print();
  std::cout << "rollbacks=" << faults.rollbacks << " cross_commits=" << faults.cross_commits
            << " drained=" << check(faults.drained) << '\n';
  const bool conserves = faults.conserves();
  std::cout << "\nClaim: failing a foreign shard's server mid-federation rolls back every\n"
               "partial cross-shard walk (rollbacks > 0), leaks nothing, and recovery\n"
               "restores cross-shard commits   [" << check(conserves) << "]\n";

  print_section("Population simulation over a 4-shard federation (E18 load shape)");
  const bool population = run_population();
  std::cout << "Claim: the population's conservation laws and the shard balance law hold\n"
               "over a federated backend   [" << check(population) << "]\n";

  return all_clean && scales && identical && conserves && population ? 0 : 1;
}
