// E16 — Concurrent negotiation service (extension; the paper's prototype
// negotiated one session at a time). A worker pool runs the full Step 1-5
// procedure per request against the shared farm/transport behind a bounded
// request queue. Each request pays a simulated remote round-trip
// (simulated_rtt_ms) for the catalog/server/transport message exchanges the
// distributed prototype paid off-CPU, so the service is latency-bound and
// worker-pool speedups are measurable on any core count.
//
// Self-checks (non-zero exit on failure):
//   1. Closed loop on a capacity-rich farm: 8 workers sustain >= 4x the
//      single-worker throughput.
//   2. Open-loop overload against a small queue sheds with FAILEDTRYLATER
//      (shed rate > 0) and still resolves every submission exactly once.
//   3. Conservation at drain after every run: no live sessions, all server
//      and link budgets back to zero, recomputed transport ledger matches.
//   4. Tracing overhead: with a RingBufferSink attached, exact-sample p95
//      latency stays within 5% of the untraced run (best of three each).
//   5. Refusal attribution under faults: every FAILEDTRYLATER /
//      FAILEDWITHOFFER trace from a faulted run names the refusing
//      component and the attempt count on its refused commit spans.
#include "service/load_gen.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <mutex>
#include <thread>

#include "bench_util.hpp"
#include "fault/fault_injector.hpp"
#include "obs/trace_sink.hpp"
#include "test_service.hpp"

namespace {

using namespace qosnp;
using namespace qosnp::bench;
using qosnp::testing::ServiceSystem;
using qosnp::testing::TestSystem;

constexpr double kRttMs = 5.0;
constexpr std::size_t kRequests = 240;

struct RunResult {
  LoadReport load;
  bool drained = false;
  bool accounted = false;
};

RunResult run_closed(std::size_t workers) {
  ServiceSystem sys(/*num_clients=*/16);
  ServiceConfig config;
  config.workers = workers;
  config.queue_capacity = 64;
  config.simulated_rtt_ms = kRttMs;
  NegotiationService service(*sys.manager, *sys.sessions, config);
  service.start();

  LoadConfig load;
  load.mode = ArrivalMode::kClosed;
  load.concurrency = 16;
  load.requests = kRequests;
  load.seed = 5;
  load.clients = sys.clients;
  load.documents = {"article"};
  load.profiles = {TestSystem::tolerant_profile()};

  RunResult result;
  result.load = run_load(service, load);
  service.stop();
  result.drained = sys.drained();
  result.accounted = result.load.service.processed + result.load.service.shed_queue_full ==
                     result.load.service.submitted;
  return result;
}

RunResult run_open_overload() {
  ServiceSystem sys(/*num_clients=*/16);
  ServiceConfig config;
  config.workers = 2;
  config.queue_capacity = 8;
  config.simulated_rtt_ms = kRttMs;  // capacity ~= 2/0.005 = 400 rps
  NegotiationService service(*sys.manager, *sys.sessions, config);
  service.start();

  LoadConfig load;
  load.mode = ArrivalMode::kOpen;
  load.arrival_rate_per_s = 2'000.0;  // ~5x the service capacity
  load.requests = 300;
  load.seed = 11;
  load.clients = sys.clients;
  load.documents = {"article"};
  load.profiles = {TestSystem::tolerant_profile()};

  RunResult result;
  result.load = run_load(service, load);
  service.stop();
  result.drained = sys.drained();
  result.accounted = result.load.service.processed + result.load.service.shed_queue_full ==
                     result.load.service.submitted;
  return result;
}

// Exact per-request latencies from a closed loop: the service's own
// histogram buckets are ~12% wide — far too coarse for a <5% overhead
// check — so we collect resp.total_ms per response and sort.
std::vector<double> run_exact_latencies(NegotiationService& service, ServiceSystem& sys,
                                        const DocumentId& document, std::size_t requests,
                                        std::size_t concurrency) {
  std::mutex mu;
  std::vector<double> samples;
  samples.reserve(requests);
  std::atomic<std::uint64_t> next{0};
  auto client_loop = [&] {
    for (;;) {
      const std::uint64_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= requests) return;
      NegotiationRequest req;
      req.id = i + 1;
      req.client = sys.clients[i % sys.clients.size()];
      req.document = document;
      req.profile = TestSystem::tolerant_profile();
      NegotiationResult resp = service.submit(std::move(req)).get();
      if (resp.session_id != 0) service.sessions().complete(resp.session_id);
      std::lock_guard lk(mu);
      samples.push_back(resp.total_ms);
    }
  };
  std::vector<std::thread> threads;
  for (std::size_t c = 0; c < concurrency; ++c) threads.emplace_back(client_loop);
  for (auto& t : threads) t.join();
  std::sort(samples.begin(), samples.end());
  return samples;
}

double exact_p95(const std::vector<double>& sorted) {
  if (sorted.empty()) return 0.0;
  const std::size_t index =
      static_cast<std::size_t>(std::ceil(0.95 * static_cast<double>(sorted.size()))) - 1;
  return sorted[std::min(index, sorted.size() - 1)];
}

// A wide variant ladder (36 video x 4 audio x 4 text = 576 combinations):
// the overhead run negotiates a request whose enumeration/classification is
// real work, so the measured latency is CPU, not scheduler noise, and the
// tracing fraction reflects a document of realistic richness.
MultimediaDocument heavy_article() {
  MultimediaDocument doc;
  doc.id = "heavy";
  doc.title = "Wide-ladder article";
  doc.copyright_cost = Money::cents(50);
  const double duration = 120.0;

  Monomedia video;
  video.id = "heavy/video";
  video.kind = MediaKind::kVideo;
  video.duration_s = duration;
  int v = 0;
  for (const ColorDepth depth :
       {ColorDepth::kColor, ColorDepth::kGray, ColorDepth::kBlackWhite}) {
    for (const int rate : {25, 15, 10}) {
      for (const int width : {640, 320}) {
        for (const char* server : {"server-a", "server-b"}) {
          video.variants.push_back(
              make_video_variant("heavy/video/" + std::to_string(v++),
                                 VideoQoS{depth, rate, width}, CodingFormat::kMPEG1, duration,
                                 server));
        }
      }
    }
  }
  doc.monomedia.push_back(std::move(video));

  Monomedia audio;
  audio.id = "heavy/audio";
  audio.kind = MediaKind::kAudio;
  audio.duration_s = duration;
  int a = 0;
  for (const AudioQuality quality : {AudioQuality::kCD, AudioQuality::kTelephone}) {
    for (const char* server : {"server-a", "server-b"}) {
      audio.variants.push_back(make_audio_variant(
          "heavy/audio/" + std::to_string(a++), quality,
          quality == AudioQuality::kCD ? CodingFormat::kPCM : CodingFormat::kADPCM, duration,
          server));
    }
  }
  doc.monomedia.push_back(std::move(audio));

  Monomedia text;
  text.id = "heavy/text";
  text.kind = MediaKind::kText;
  int t = 0;
  for (const Language language : {Language::kEnglish, Language::kFrench}) {
    for (const char* server : {"server-a", "server-b"}) {
      text.variants.push_back(make_text_variant("heavy/text/" + std::to_string(t++), language,
                                                CodingFormat::kPlainText, 8'000, server));
    }
  }
  doc.monomedia.push_back(std::move(text));
  return doc;
}

// Untraced-vs-traced latency; no simulated RTT, so the measured work is
// the negotiation itself and tracing cannot hide behind sleeps. The eager
// strategy materialises and classifies the full 576-combination product
// per request (parallel classification off: one worker must mean one
// thread of work) — the lazy default would stop after the first offer and
// leave nothing but scheduler noise to measure against. Two one-worker
// services share the manager; one closed-loop client alternates between
// them request by request, so frequency scaling, cache state and allocator
// drift land on both sample pools alike and the p95 ratio isolates the
// tracing cost.
struct TracingOverhead {
  double p95_off = 0.0;
  double p95_on = 0.0;

  double overhead() const { return p95_off > 0.0 ? p95_on / p95_off - 1.0 : 0.0; }
};

TracingOverhead measure_tracing_overhead() {
  ServiceSystem sys(/*num_clients=*/16);
  sys.catalog.add(heavy_article());
  NegotiationConfig eager;
  eager.enumeration.strategy = EnumerationStrategy::kEager;
  eager.parallel_threshold = 0;
  QoSManager manager(sys.catalog, sys.farm, *sys.transport, CostModel{}, eager);
  SessionManager sessions(manager);
  RingBufferSink ring(256);

  ServiceConfig config;
  config.workers = 1;
  config.queue_capacity = 64;
  config.simulated_rtt_ms = 0.0;
  NegotiationService untraced(manager, sessions, config);
  config.trace_sink = &ring;
  NegotiationService traced(manager, sessions, config);
  untraced.start();
  traced.start();

  auto one = [&](NegotiationService& service, std::uint64_t id) {
    NegotiationRequest req;
    req.id = id;
    req.client = sys.clients[id % sys.clients.size()];
    req.document = "heavy";
    req.profile = TestSystem::tolerant_profile();
    NegotiationResult resp = service.submit(std::move(req)).get();
    if (resp.session_id != 0) sessions.complete(resp.session_id);
    return resp.total_ms;
  };

  const std::size_t kPairs = 1'200;
  std::vector<double> off;
  std::vector<double> on;
  off.reserve(kPairs);
  on.reserve(kPairs);
  for (std::size_t i = 0; i < 100; ++i) {  // warm caches and the allocator
    (void)one(untraced, 2 * i + 1);
    (void)one(traced, 2 * i + 2);
  }
  for (std::size_t i = 0; i < kPairs; ++i) {
    off.push_back(one(untraced, 2 * i + 1));
    on.push_back(one(traced, 2 * i + 2));
  }
  untraced.stop();
  traced.stop();
  std::sort(off.begin(), off.end());
  std::sort(on.begin(), on.end());
  return {exact_p95(off), exact_p95(on)};
}

struct FaultedTraceAudit {
  std::size_t failed_traces = 0;      ///< FAILEDTRYLATER/FAILEDWITHOFFER, not shed
  std::size_t refused_attempts = 0;   ///< refused commit spans over those traces
  std::size_t unattributed = 0;       ///< refused spans missing component/attempts
  std::size_t missing_refusal = 0;    ///< failed traces without a refused span
  bool drained = false;

  bool attributed() const {
    return failed_traces > 0 && refused_attempts > 0 && unattributed == 0 &&
           missing_refusal == 0;
  }
};

// Faulted load with tracing on: both servers flap (30% transient refusals)
// and share a hard outage window, so the Step-5 walk is refused often and
// sometimes completely. Every failure trace must carry the attribution.
FaultedTraceAudit run_faulted_attribution() {
  ServiceSystem sys(/*num_clients=*/16);
  FaultPlan plan;
  plan.server_defaults.transient_failure_p = 0.30;
  plan.server_defaults.outage_after_events = 60;
  plan.server_defaults.outage_length_events = 120;
  FaultyServerFarm faulty_farm(sys.farm, plan);
  QoSManager manager(sys.catalog, faulty_farm, *sys.transport);
  SessionManager sessions(manager);

  RingBufferSink ring(512);
  ServiceConfig config;
  config.workers = 4;
  config.queue_capacity = 64;
  config.simulated_rtt_ms = 1.0;
  config.trace_sink = &ring;
  NegotiationService service(manager, sessions, config);
  service.start();
  (void)run_exact_latencies(service, sys, "article", /*requests=*/160, /*concurrency=*/8);
  service.stop();

  FaultedTraceAudit audit;
  for (const auto& trace : ring.snapshot()) {
    const bool failed =
        trace->shed() == "none" &&
        (trace->verdict() == "FAILEDTRYLATER" || trace->verdict() == "FAILEDWITHOFFER");
    if (!failed) continue;
    ++audit.failed_traces;
    std::size_t refused_here = 0;
    for (const Span& span : trace->spans()) {
      if (span.stage != Stage::kCommitAttempt || span.attr("result") != "refused") continue;
      ++refused_here;
      if (span.attr("component").empty() || span.attr("attempts").empty()) {
        ++audit.unattributed;
      }
    }
    audit.refused_attempts += refused_here;
    if (refused_here == 0) ++audit.missing_refusal;
  }
  audit.drained = sessions.active_count() == 0 && sys.farm_reserved_bps() == 0 &&
                  sys.transport->active_flows() == 0;
  return audit;
}

std::vector<std::string> service_row(const std::string& label, const RunResult& r) {
  const ServiceReport& s = r.load.service;
  return {label,
          fmt(r.load.throughput_rps, 0),
          fmt(s.latency.quantile_ms(0.50), 2),
          fmt(s.latency.quantile_ms(0.95), 2),
          fmt(s.latency.quantile_ms(0.99), 2),
          pct(s.shed_rate()),
          std::to_string(s.queue_high_water),
          check(r.drained && r.accounted)};
}

}  // namespace

int main() {
  print_title("E16: Concurrent negotiation service (worker pool + admission control)");
  std::cout << "(closed loop, 16 clients, " << kRequests << " requests, simulated RTT " << kRttMs
            << " ms per negotiation; capacity-rich farm)\n";

  print_section("Worker scaling (closed loop)");
  Table scaling({"workers", "rps", "p50 ms", "p95 ms", "p99 ms", "shed", "queue hw", "drain"});
  double rps_1 = 0.0;
  double rps_8 = 0.0;
  bool all_clean = true;
  for (const std::size_t workers : {1u, 2u, 4u, 8u}) {
    const RunResult r = run_closed(workers);
    scaling.row(service_row(std::to_string(workers), r));
    all_clean = all_clean && r.drained && r.accounted &&
                r.load.service.count(NegotiationStatus::kSucceeded) == kRequests;
    if (workers == 1) rps_1 = r.load.throughput_rps;
    if (workers == 8) rps_8 = r.load.throughput_rps;
  }
  scaling.print();

  const double speedup = rps_1 > 0.0 ? rps_8 / rps_1 : 0.0;
  const bool scales = speedup >= 4.0;
  std::cout << "\nClaim: the worker pool overlaps negotiation round-trips — 8 workers\n"
               "sustain >= 4x single-worker throughput. Measured speedup: "
            << fmt(speedup, 1) << "x   [" << check(scales) << "]\n";

  print_section("Open-loop overload (2 workers, queue capacity 8, ~5x capacity offered)");
  const RunResult overload = run_open_overload();
  Table shed({"mode", "rps", "p50 ms", "p95 ms", "p99 ms", "shed", "queue hw", "drain"});
  shed.row(service_row("open", overload)).print();
  const bool sheds = overload.load.service.shed_rate() > 0.0 && overload.drained &&
                     overload.accounted;
  std::cout << "\nClaim: overload is rejected with FAILEDTRYLATER at the queue edge, not\n"
               "by breaking commitments. Shed rate " << pct(overload.load.service.shed_rate())
            << ", every submission resolved, drained clean   [" << check(sheds) << "]\n";

  print_section("Tracing overhead (exact-sample p95, no simulated RTT, interleaved bursts)");
  const TracingOverhead traced = measure_tracing_overhead();
  const double overhead = traced.overhead();
  const bool cheap = overhead < 0.05;
  Table tracing({"tracing", "p95 ms"});
  tracing.row({"off", fmt(traced.p95_off, 3)})
      .row({"ring sink", fmt(traced.p95_on, 3)})
      .print();
  std::cout << "\nClaim: per-request tracing into a ring sink costs < 5% on p95 latency.\n"
               "Measured overhead: " << fmt(overhead * 100.0, 1) << "%   [" << check(cheap)
            << "]\n";

  print_section("Refusal attribution under faults (flapping servers + outage window)");
  const FaultedTraceAudit audit = run_faulted_attribution();
  Table attribution({"failed traces", "refused attempts", "unattributed", "no-refusal", "drain"});
  attribution
      .row({std::to_string(audit.failed_traces), std::to_string(audit.refused_attempts),
            std::to_string(audit.unattributed), std::to_string(audit.missing_refusal),
            check(audit.drained)})
      .print();
  const bool attributed = audit.attributed() && audit.drained;
  std::cout << "\nClaim: every FAILEDTRYLATER/FAILEDWITHOFFER trace names the refusing\n"
               "component and attempt count on its refused commit spans   ["
            << check(attributed) << "]\n";

  return all_clean && scales && sheds && cheap && attributed ? 0 : 1;
}
