// E16 — Concurrent negotiation service (extension; the paper's prototype
// negotiated one session at a time). A worker pool runs the full Step 1-5
// procedure per request against the shared farm/transport behind a bounded
// request queue. Each request pays a simulated remote round-trip
// (simulated_rtt_ms) for the catalog/server/transport message exchanges the
// distributed prototype paid off-CPU, so the service is latency-bound and
// worker-pool speedups are measurable on any core count.
//
// Self-checks (non-zero exit on failure):
//   1. Closed loop on a capacity-rich farm: 8 workers sustain >= 4x the
//      single-worker throughput.
//   2. Open-loop overload against a small queue sheds with FAILEDTRYLATER
//      (shed rate > 0) and still resolves every submission exactly once.
//   3. Conservation at drain after every run: no live sessions, all server
//      and link budgets back to zero, recomputed transport ledger matches.
#include "service/load_gen.hpp"

#include "bench_util.hpp"
#include "test_service.hpp"

namespace {

using namespace qosnp;
using namespace qosnp::bench;
using qosnp::testing::ServiceSystem;
using qosnp::testing::TestSystem;

constexpr double kRttMs = 5.0;
constexpr std::size_t kRequests = 240;

struct RunResult {
  LoadReport load;
  bool drained = false;
  bool accounted = false;
};

RunResult run_closed(std::size_t workers) {
  ServiceSystem sys(/*num_clients=*/16);
  ServiceConfig config;
  config.workers = workers;
  config.queue_capacity = 64;
  config.simulated_rtt_ms = kRttMs;
  NegotiationService service(*sys.manager, *sys.sessions, config);
  service.start();

  LoadConfig load;
  load.mode = ArrivalMode::kClosed;
  load.concurrency = 16;
  load.requests = kRequests;
  load.seed = 5;
  load.clients = sys.clients;
  load.documents = {"article"};
  load.profiles = {TestSystem::tolerant_profile()};

  RunResult result;
  result.load = run_load(service, load);
  service.stop();
  result.drained = sys.drained();
  result.accounted = result.load.service.processed + result.load.service.shed_queue_full ==
                     result.load.service.submitted;
  return result;
}

RunResult run_open_overload() {
  ServiceSystem sys(/*num_clients=*/16);
  ServiceConfig config;
  config.workers = 2;
  config.queue_capacity = 8;
  config.simulated_rtt_ms = kRttMs;  // capacity ~= 2/0.005 = 400 rps
  NegotiationService service(*sys.manager, *sys.sessions, config);
  service.start();

  LoadConfig load;
  load.mode = ArrivalMode::kOpen;
  load.arrival_rate_per_s = 2'000.0;  // ~5x the service capacity
  load.requests = 300;
  load.seed = 11;
  load.clients = sys.clients;
  load.documents = {"article"};
  load.profiles = {TestSystem::tolerant_profile()};

  RunResult result;
  result.load = run_load(service, load);
  service.stop();
  result.drained = sys.drained();
  result.accounted = result.load.service.processed + result.load.service.shed_queue_full ==
                     result.load.service.submitted;
  return result;
}

std::vector<std::string> service_row(const std::string& label, const RunResult& r) {
  const ServiceReport& s = r.load.service;
  return {label,
          fmt(r.load.throughput_rps, 0),
          fmt(s.latency.quantile_ms(0.50), 2),
          fmt(s.latency.quantile_ms(0.95), 2),
          fmt(s.latency.quantile_ms(0.99), 2),
          pct(s.shed_rate()),
          std::to_string(s.queue_high_water),
          check(r.drained && r.accounted)};
}

}  // namespace

int main() {
  print_title("E16: Concurrent negotiation service (worker pool + admission control)");
  std::cout << "(closed loop, 16 clients, " << kRequests << " requests, simulated RTT " << kRttMs
            << " ms per negotiation; capacity-rich farm)\n";

  print_section("Worker scaling (closed loop)");
  Table scaling({"workers", "rps", "p50 ms", "p95 ms", "p99 ms", "shed", "queue hw", "drain"});
  double rps_1 = 0.0;
  double rps_8 = 0.0;
  bool all_clean = true;
  for (const std::size_t workers : {1u, 2u, 4u, 8u}) {
    const RunResult r = run_closed(workers);
    scaling.row(service_row(std::to_string(workers), r));
    all_clean = all_clean && r.drained && r.accounted &&
                r.load.service.count(NegotiationStatus::kSucceeded) == kRequests;
    if (workers == 1) rps_1 = r.load.throughput_rps;
    if (workers == 8) rps_8 = r.load.throughput_rps;
  }
  scaling.print();

  const double speedup = rps_1 > 0.0 ? rps_8 / rps_1 : 0.0;
  const bool scales = speedup >= 4.0;
  std::cout << "\nClaim: the worker pool overlaps negotiation round-trips — 8 workers\n"
               "sustain >= 4x single-worker throughput. Measured speedup: "
            << fmt(speedup, 1) << "x   [" << check(scales) << "]\n";

  print_section("Open-loop overload (2 workers, queue capacity 8, ~5x capacity offered)");
  const RunResult overload = run_open_overload();
  Table shed({"mode", "rps", "p50 ms", "p95 ms", "p99 ms", "shed", "queue hw", "drain"});
  shed.row(service_row("open", overload)).print();
  const bool sheds = overload.load.service.shed_rate() > 0.0 && overload.drained &&
                     overload.accounted;
  std::cout << "\nClaim: overload is rejected with FAILEDTRYLATER at the queue edge, not\n"
               "by breaking commitments. Shed rate " << pct(overload.load.service.shed_rate())
            << ", every submission resolved, drained clean   [" << check(sheds) << "]\n";

  return all_clean && scales && sheds ? 0 : 1;
}
