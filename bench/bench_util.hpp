// Small console-table helpers shared by the experiment benches. Each bench
// prints the paper's expected figures next to the measured ones so a reader
// can eyeball the reproduction without opening EXPERIMENTS.md.
#pragma once

#include <algorithm>
#include <iomanip>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

namespace qosnp::bench {

inline void print_title(const std::string& title) {
  std::cout << '\n' << title << '\n' << std::string(title.size(), '=') << '\n';
}

inline void print_section(const std::string& title) {
  std::cout << '\n' << title << '\n' << std::string(title.size(), '-') << '\n';
}

class Table {
 public:
  explicit Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

  Table& row(std::vector<std::string> cells) {
    rows_.push_back(std::move(cells));
    return *this;
  }

  void print() const {
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
    for (const auto& row : rows_) {
      for (std::size_t c = 0; c < row.size() && c < widths.size(); ++c) {
        widths[c] = std::max(widths[c], row[c].size());
      }
    }
    auto print_row = [&](const std::vector<std::string>& cells) {
      std::cout << "  ";
      for (std::size_t c = 0; c < cells.size(); ++c) {
        std::cout << std::left << std::setw(static_cast<int>(widths[c]) + 2) << cells[c];
      }
      std::cout << '\n';
    };
    print_row(headers_);
    std::size_t total = 2;
    for (std::size_t w : widths) total += w + 2;
    std::cout << "  " << std::string(total - 2, '-') << '\n';
    for (const auto& row : rows_) print_row(row);
  }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

inline std::string fmt(double v, int decimals = 3) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(decimals) << v;
  return os.str();
}

inline std::string pct(double v, int decimals = 1) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(decimals) << v * 100.0 << '%';
  return os.str();
}

/// Verdict marker for paper-vs-measured rows.
inline std::string check(bool ok) { return ok ? "OK" : "MISMATCH"; }

}  // namespace qosnp::bench
