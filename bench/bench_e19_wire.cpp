// E19 — wire-protocol overhead: what does putting a real TCP front-end in
// front of the negotiation service cost per request?
//
// Twin measurements over the same stack (8 workers, shared farm/transport,
// the news-article document):
//   in-process — NegotiationService::submit(request).get(), the baseline
//                every previous bench used;
//   loopback   — the same requests encoded to wire frames, sent through a
//                WireClient to a qosnpd WireServer on 127.0.0.1, decoded,
//                dispatched via submit_async, and the result marshalled
//                back over the socket.
// Both phases run the same per-request simulated RTT so the service-side
// work is identical; the p50 delta is the pure wire tax (framing + CRC32C
// + syscalls + event-loop marshalling).
//
// Self-checks (non-zero exit on failure):
//   - loopback p50 < 2x in-process p50 (the wire tax must not dominate);
//   - every loopback verdict equals its in-process twin's verdict;
//   - qosnp_net_* conservation laws balance after the server drains;
//   - the shared system drains (no leaked sessions or reservations).
#include <algorithm>
#include <cstdint>
#include <iostream>
#include <vector>

#include "bench_util.hpp"
#include "netio/client.hpp"
#include "netio/server.hpp"
#include "service/negotiation_service.hpp"
#include "test_service.hpp"
#include "util/stopwatch.hpp"

namespace {

using namespace qosnp;
using namespace qosnp::bench;
using qosnp::testing::ServiceSystem;
using qosnp::testing::TestSystem;

constexpr std::size_t kWorkers = 8;
constexpr double kRttMs = 0.5;
constexpr std::size_t kWarmup = 32;
constexpr std::size_t kRequests = 320;

struct PhaseResult {
  std::vector<double> latencies_ms;
  std::vector<NegotiationStatus> verdicts;
  double wall_s = 0.0;
};

double percentile(std::vector<double> values, double p) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const std::size_t idx = std::min(values.size() - 1,
                                   static_cast<std::size_t>(p * static_cast<double>(values.size())));
  return values[idx];
}

NegotiationRequest nth_request(ServiceSystem& sys, std::size_t i) {
  return make_negotiation_request(sys.clients[i % sys.clients.size()], "article",
                                  TestSystem::tolerant_profile());
}

/// Release the session a resolved request opened, so both phases run
/// against an empty farm and the drain invariant holds at the end.
void release(ServiceSystem& sys, const NegotiationResult& result) {
  if (result.session_id != 0) sys.sessions->complete(result.session_id);
}

PhaseResult run_in_process(ServiceSystem& sys, NegotiationService& service) {
  PhaseResult out;
  for (std::size_t i = 0; i < kWarmup; ++i) {
    release(sys, service.submit(nth_request(sys, i)).get());
  }
  Stopwatch wall;
  for (std::size_t i = 0; i < kRequests; ++i) {
    Stopwatch one;
    NegotiationResult result = service.submit(nth_request(sys, i)).get();
    out.latencies_ms.push_back(one.elapsed_ms());
    out.verdicts.push_back(result.verdict);
    release(sys, result);
  }
  out.wall_s = wall.elapsed_seconds();
  return out;
}

PhaseResult run_loopback(ServiceSystem& sys, WireServer& server) {
  WireClientConfig config;
  config.port = server.port();
  config.deadline_ms = 30'000.0;
  WireClient client(config);

  PhaseResult out;
  for (std::size_t i = 0; i < kWarmup; ++i) {
    auto r = client.submit(nth_request(sys, i));
    if (r.ok()) release(sys, r.value());
  }
  Stopwatch wall;
  for (std::size_t i = 0; i < kRequests; ++i) {
    Stopwatch one;
    auto r = client.submit(nth_request(sys, i));
    out.latencies_ms.push_back(one.elapsed_ms());
    if (!r.ok()) {
      std::cerr << "loopback submit failed: " << r.error().to_text() << '\n';
      out.verdicts.push_back(NegotiationStatus::kFailedTryLater);
      continue;
    }
    out.verdicts.push_back(r.value().verdict);
    release(sys, r.value());
  }
  out.wall_s = wall.elapsed_seconds();
  return out;
}

}  // namespace

int main() {
  print_title("E19: wire-protocol overhead (loopback qosnpd vs in-process submit)");

  ServiceSystem sys(/*num_clients=*/16);
  ServiceConfig config;
  config.workers = kWorkers;
  config.queue_capacity = 256;
  config.simulated_rtt_ms = kRttMs;
  NegotiationService service(*sys.manager, *sys.sessions, config);
  service.start();

  PhaseResult inproc = run_in_process(sys, service);

  WireServer server(service);
  server.start();
  PhaseResult loopback = run_loopback(sys, server);
  server.stop();

  service.stop();
  const bool net_balanced = server.net().balanced();
  const bool drained = sys.drained();

  const double inproc_p50 = percentile(inproc.latencies_ms, 0.50);
  const double loop_p50 = percentile(loopback.latencies_ms, 0.50);
  const double inproc_p99 = percentile(inproc.latencies_ms, 0.99);
  const double loop_p99 = percentile(loopback.latencies_ms, 0.99);
  const double tax_us = (loop_p50 - inproc_p50) * 1000.0;

  std::size_t verdict_mismatches = 0;
  for (std::size_t i = 0; i < kRequests; ++i) {
    if (inproc.verdicts[i] != loopback.verdicts[i]) ++verdict_mismatches;
  }

  print_section("Per-request latency (" + std::to_string(kRequests) +
                " sequential requests, simulated RTT " + fmt(kRttMs, 1) + "ms, " +
                std::to_string(kWorkers) + " workers)");
  Table table({"path", "p50 ms", "p99 ms", "wall s"});
  table.row({"in-process submit", fmt(inproc_p50), fmt(inproc_p99), fmt(inproc.wall_s, 2)});
  table.row({"loopback wire", fmt(loop_p50), fmt(loop_p99), fmt(loopback.wall_s, 2)});
  table.print();
  std::cout << "\n  wire tax at p50: " << fmt(tax_us, 1) << " us  ("
            << fmt(loop_p50 / inproc_p50, 2) << "x)\n";

  print_section("Self-checks");
  const bool overhead_ok = loop_p50 < 2.0 * inproc_p50;
  const bool verdicts_ok = verdict_mismatches == 0;
  Table checks({"check", "verdict"});
  checks.row({"loopback p50 < 2x in-process p50", check(overhead_ok)});
  checks.row({"loopback verdicts == in-process verdicts", check(verdicts_ok)});
  checks.row({"qosnp_net_* conservation laws balanced", check(net_balanced)});
  checks.row({"system drained (sessions, farm, transport)", check(drained)});
  checks.print();

  return (overhead_ok && verdicts_ok && net_balanced && drained) ? 0 : 1;
}
