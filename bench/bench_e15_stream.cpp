// E15 — Lazy best-first enumeration vs eager enumerate-then-sort
// (extension; the paper notes "many offers may be produced for a given
// request"). Sweeps the offer-space product from 10^2 to 10^7 combinations
// (k video monomedia x 10 variants each) and compares, per size:
//   * eager:      enumerate_offers (capped at 100'000) + classify_offers —
//                 cost scales with the whole product (or its cap);
//   * best-first: OfferStream construction + pulling the first 10 offers —
//                 cost scales with offers *consumed*.
// Self-checks (non-zero exit on failure):
//   1. differential: at the sizes where the eager path runs uncapped, the
//      stream's full yield is byte-identical to the eager classified order;
//   2. laziness: the stream's scored frontier stays near consumed x media,
//      even at 10^7 combinations;
//   3. latency: best-first is >= 10x faster than eager at 10^6 combinations
//      (the eager side is *capped* at 10% of that product, so the true
//      eager cost is strictly larger than what we beat);
//   4. the truncation defect: at 10^6 with a 1'000-offer cap the eager
//      prefix misses the true best offer; the stream emits it first.
// Peak RSS (getrusage) is reported before/after the eager sweep: the lazy
// sweep leaves no lasting footprint, the eager one does.
#include <sys/resource.h>

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "core/classify.hpp"
#include "core/enumerate.hpp"
#include "document/corpus.hpp"
#include "profile/profiles.hpp"

namespace {

using namespace qosnp;
using namespace qosnp::bench;

constexpr std::size_t kVariantsPerMedium = 10;
constexpr std::size_t kEagerCap = 100'000;

/// k video monomedia, each with a 10-rung quality ladder; the best rung
/// (".../v9") sits last so the best combination is the last one in document
/// (mixed-radix) order — the configuration the eager cap always drops.
std::shared_ptr<const MultimediaDocument> ladder_document(std::size_t media) {
  MultimediaDocument doc;
  doc.id = "ladder-" + std::to_string(media);
  doc.copyright_cost = Money::cents(50);
  const double duration = 60.0;
  const ColorDepth colors[] = {ColorDepth::kBlackWhite, ColorDepth::kGray, ColorDepth::kColor,
                               ColorDepth::kSuperColor};
  for (std::size_t m = 0; m < media; ++m) {
    Monomedia video;
    video.id = doc.id + "/video" + std::to_string(m);
    video.kind = MediaKind::kVideo;
    video.duration_s = duration;
    for (std::size_t v = 0; v < kVariantsPerMedium; ++v) {
      const VideoQoS qos{colors[v * 4 / kVariantsPerMedium],
                         static_cast<int>(10 + 2 * v),
                         static_cast<int>(320 + v * (1280 - 320) / (kVariantsPerMedium - 1))};
      video.variants.push_back(make_video_variant(
          video.id + "/v" + std::to_string(v), qos, CodingFormat::kMPEG1, duration,
          v % 2 ? "server-b" : "server-a"));
    }
    doc.monomedia.push_back(std::move(video));
  }
  return std::make_shared<const MultimediaDocument>(std::move(doc));
}

UserProfile sweep_profile() {
  UserProfile p;
  p.mm.video = VideoProfile{};
  p.mm.video->desired = VideoQoS{ColorDepth::kSuperColor, 28, 1280};
  p.mm.video->worst = VideoQoS{ColorDepth::kBlackWhite, 5, 160};
  p.mm.cost.max_cost = Money::dollars(500);
  return p;
}

ClientMachine sweep_client() {
  ClientMachine client;
  client.name = "bench-client";
  client.node = "bench-node";
  client.screen = ScreenSpec{1920, 1080, ColorDepth::kSuperColor};
  client.decoders = {CodingFormat::kMPEG1};
  client.max_audio = AudioQuality::kCD;
  return client;
}

std::string signature(const SystemOffer& offer) {
  std::string sig;
  for (const OfferComponent& c : offer.components) {
    sig += c.variant->id;
    sig += '|';
  }
  return sig;
}

double ms_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - start)
      .count();
}

long peak_rss_kb() {
  rusage usage{};
  getrusage(RUSAGE_SELF, &usage);
  return usage.ru_maxrss;
}

struct SweepPoint {
  std::size_t media = 0;
  std::size_t product = 0;
  double stream_ms = 0.0;   ///< stream construction + first 10 offers
  double eager_ms = 0.0;    ///< enumerate (capped) + classify
  std::size_t eager_seen = 0;
  std::size_t states = 0;   ///< stream frontier states scored
  bool eager_capped = false;
};

}  // namespace

int main() {
  print_title("E15: Lazy best-first offer stream vs eager enumerate-then-sort");
  std::cout << "(k video monomedia x 10 variants; pull = 10 offers; eager cap = "
            << kEagerCap << ")\n";

  const UserProfile profile = sweep_profile();
  const ClientMachine client = sweep_client();
  const std::size_t media_counts[] = {2, 3, 4, 5, 6, 7};  // 10^2 .. 10^7

  bool ok = true;
  std::vector<SweepPoint> points;

  // Phase 1: the lazy sweep (and the differential check where affordable).
  const long rss_before_stream_kb = peak_rss_kb();
  for (const std::size_t media : media_counts) {
    SweepPoint point;
    point.media = media;
    auto doc = ladder_document(media);
    auto feasible = compatible_variants(doc, client, profile.mm);
    if (!feasible.ok()) {
      std::cout << "feasibility failed: " << feasible.error() << '\n';
      return 1;
    }
    point.product = feasible.value().combination_count();

    const auto start = std::chrono::steady_clock::now();
    OfferStream stream(feasible.value(), profile.mm, profile.importance, CostModel{},
                       ClassificationPolicy{}, kEagerCap);
    std::vector<SystemOffer> head;
    for (int i = 0; i < 10; ++i) {
      auto offer = stream.next();
      if (!offer) break;
      head.push_back(std::move(*offer));
    }
    point.stream_ms = ms_since(start);
    point.states = stream.states_generated();

    // Check 4 (truncation defect): the true best offer is every medium's top
    // rung — outside any document-order prefix, but always first here.
    std::string best_sig;
    for (std::size_t m = 0; m < media; ++m) {
      best_sig += doc->id + "/video" + std::to_string(m) + "/v9|";
    }
    if (head.empty() || signature(head[0]) != best_sig) {
      std::cout << "FAIL: stream did not emit the true best offer first at 10^" << media
                << '\n';
      ok = false;
    }
    // Check 2 (laziness): frontier work ~ consumed x media, never ~ product.
    if (point.states > 10u * media * kVariantsPerMedium * 4u) {
      std::cout << "FAIL: stream scored " << point.states << " states for 10 offers at 10^"
                << media << '\n';
      ok = false;
    }
    points.push_back(point);
  }
  const long rss_after_stream_kb = peak_rss_kb();

  // Phase 2: the eager sweep.
  for (SweepPoint& point : points) {
    auto doc = ladder_document(point.media);
    auto feasible = compatible_variants(doc, client, profile.mm);
    EnumerationConfig config;
    config.strategy = EnumerationStrategy::kEager;
    config.max_offers = kEagerCap;
    const auto start = std::chrono::steady_clock::now();
    OfferList list = enumerate_offers(feasible.value(), profile.mm, CostModel{}, config);
    classify_offers(list.offers, profile.mm, profile.importance, ClassificationPolicy{});
    point.eager_ms = ms_since(start);
    point.eager_seen = list.offers.size();
    point.eager_capped = list.truncated;

    // Check 1 (differential): where the eager path saw the whole product,
    // the stream must reproduce its order byte for byte.
    if (!point.eager_capped && point.product <= 10'000) {
      OfferStream stream(feasible.value(), profile.mm, profile.importance, CostModel{},
                         ClassificationPolicy{}, kEagerCap);
      for (std::size_t i = 0; i < list.offers.size(); ++i) {
        auto offer = stream.next();
        if (!offer || signature(*offer) != signature(list.offers[i]) ||
            offer->sns != list.offers[i].sns || offer->oif != list.offers[i].oif) {
          std::cout << "FAIL: stream diverges from the eager oracle at rank " << i << " (10^"
                    << point.media << ")\n";
          ok = false;
          break;
        }
      }
    }
    // Check 4 continued: a 1'000-offer eager cap on the 10^6 product keeps
    // only the first 1'000 document-order combinations — the true best
    // offer is not among them, and no amount of sorting brings it back.
    if (point.product == 1'000'000) {
      EnumerationConfig small;
      small.strategy = EnumerationStrategy::kEager;
      small.max_offers = 1'000;
      OfferList capped = enumerate_offers(feasible.value(), profile.mm, CostModel{}, small);
      classify_offers(capped.offers, profile.mm, profile.importance, ClassificationPolicy{});
      std::string best_sig;
      for (std::size_t m = 0; m < point.media; ++m) {
        best_sig += doc->id + "/video" + std::to_string(m) + "/v9|";
      }
      if (!capped.truncated || signature(capped.offers[0]) == best_sig) {
        std::cout << "FAIL: expected the eager 1'000-offer cap to drop the best offer\n";
        ok = false;
      }
    }
  }
  const long rss_after_eager_kb = peak_rss_kb();

  Table table({"product", "media", "eager ms", "eager offers", "stream ms", "states",
               "speedup"});
  for (const SweepPoint& p : points) {
    table.row({std::to_string(p.product), std::to_string(p.media), fmt(p.eager_ms, 2),
               std::to_string(p.eager_seen) + (p.eager_capped ? " (cap)" : ""),
               fmt(p.stream_ms, 3), std::to_string(p.states),
               fmt(p.stream_ms > 0.0 ? p.eager_ms / p.stream_ms : 0.0, 1) + "x"});
  }
  table.print();
  std::cout << "\npeak RSS: " << rss_before_stream_kb / 1024 << " MB at start, "
            << rss_after_stream_kb / 1024 << " MB after the lazy sweep, "
            << rss_after_eager_kb / 1024 << " MB after the eager sweep\n";

  // Check 3 (latency): >= 10x at 10^6 combinations. The eager side only
  // materialised kEagerCap offers there, a tenth of the product, so the
  // measured margin understates the true one.
  for (const SweepPoint& p : points) {
    if (p.product != 1'000'000) continue;
    const double speedup = p.stream_ms > 0.0 ? p.eager_ms / p.stream_ms : 1e9;
    std::cout << "\nClaim: negotiation latency scales with offers consumed, not offers\n"
                 "possible. At 10^6 combinations best-first is " << fmt(speedup, 1)
              << "x faster than the (capped) eager path   [" << check(speedup >= 10.0)
              << "]\n";
    ok = ok && speedup >= 10.0;
  }
  return ok ? 0 : 1;
}
