// E3 — The motivating example of paper Sec. 5.1: the user asks for a video
// news article at (color, 25 frames/s, TV resolution) with a $6.00 budget;
// the system finds three offers. The smart classification must pick
// (Color, 25 frames/s, TV resolution) at $6 — the only offer that satisfies
// both the QoS and the budget — automatically, so only one offer (with
// resources reserved) is ever presented to the user.
#include "core/classify.hpp"
#include "core/paper_example.hpp"

#include "bench_util.hpp"

int main() {
  using namespace qosnp;
  using namespace qosnp::bench;

  print_title("E3: Motivating example (Sec. 5.1)");
  std::cout << "Request: (color, 25 frames/s, TV resolution), maximum cost $6.00\n";

  auto ex = paper::motivating_example();
  ex.profile.importance = paper::importance_setting(1);
  classify_offers(ex.offers.offers, ex.profile.mm, ex.profile.importance);

  Table table({"rank", "offer", "QoS", "cost", "SNS", "OIF", "satisfies user"});
  for (std::size_t i = 0; i < ex.offers.offers.size(); ++i) {
    const SystemOffer& o = ex.offers.offers[i];
    table.row({std::to_string(i + 1), paper::offer_name(o),
               to_string(o.components[0].variant->qos), o.total_cost().to_string(),
               std::string(to_string(o.sns)), fmt(o.oif, 0),
               satisfies_user(o, ex.profile.mm) ? "yes" : "no"});
  }
  table.print();

  const bool ok = paper::offer_name(ex.offers.offers[0]) == "offerC" &&
                  ex.offers.offers[0].sns == Sns::kDesirable &&
                  satisfies_user(ex.offers.offers[0], ex.profile.mm);
  std::cout << "\nTop-ranked offer: " << derive_user_offer(ex.offers.offers[0]).describe()
            << "\nExpected: the (color, 25 frames/s, TV resolution) variant at $6.00  ["
            << check(ok) << "]\n";
  return ok ? 0 : 1;
}
