// E10 — The role of cost (paper Sec. 7): "The cost will limit the greediness
// of the users. Without cost constraints, the users will ask for the best
// QoS available, increasing the blocking probability of the system."
// Compares a population with meaningful budgets + cost importance against
// the same population with unbounded budgets and zero cost importance
// (everyone greedy), at several load levels.
#include "sim/replicate.hpp"

#include "bench_util.hpp"

namespace {

using namespace qosnp;
using namespace qosnp::bench;

std::vector<UserProfile> greedy_mix() {
  // The paper's greed scenario: "Without cost constraints, the users will
  // ask for the best QoS available". Same tolerance floors as the standard
  // mix, but everyone *desires* the maximum quality, has an effectively
  // infinite budget, and gives cost zero importance — so the classifier
  // always chases the richest committable variants.
  std::vector<UserProfile> mix = standard_profile_mix();
  for (UserProfile& p : mix) {
    p.name += "-greedy";
    if (p.mm.video) {
      p.mm.video->desired = VideoQoS{ColorDepth::kSuperColor, kHdtvFrameRate, kHdtvResolution};
    }
    if (p.mm.audio) p.mm.audio->desired = AudioQoS{AudioQuality::kCD};
    if (p.mm.image) {
      p.mm.image->desired = ImageQoS{ColorDepth::kSuperColor, kHdtvResolution};
    }
    p.mm.cost.max_cost = Money::dollars(1'000'000);
    p.importance.cost_per_dollar = 0.0;
  }
  return mix;
}

ExperimentConfig config_for(double load, bool greedy) {
  ExperimentConfig config;
  config.corpus.num_documents = 40;
  config.corpus.seed = 21;
  config.num_clients = 12;
  config.sim_duration_s = 1'500.0;
  config.arrival_rate_per_s = load;
  // Generous access links so greed can express itself; the backbone and the
  // server disks are the contended resources.
  config.access_bps = 60'000'000;
  config.backbone_bps = 80'000'000;
  config.server_disk_bps = 70'000'000;
  config.seed = 31;
  if (greedy) config.profiles = greedy_mix();
  return config;
}

}  // namespace

int main() {
  print_title("E10: Cost constraints limit greediness (Sec. 7)");

  constexpr int kReplications = 5;
  std::cout << "(mean +- stddev over " << kReplications << " seeds)\n";
  Table table({"arrival/s", "population", "service", "blocked", "mean util", "revenue $"});
  double budgeted_blocking = 0.0;
  double greedy_blocking = 0.0;
  for (const double load : {0.2, 0.5, 1.0}) {
    for (const bool greedy : {false, true}) {
      const ReplicatedResult r = replicate(config_for(load, greedy), kReplications);
      table.row({fmt(load, 2), greedy ? "greedy (no cost constraint)" : "budgeted",
                 pct(r.service_rate.mean) + " +-" + pct(r.service_rate.stddev),
                 pct(r.blocking.mean) + " +-" + pct(r.blocking.stddev),
                 pct(r.mean_utilization.mean),
                 fmt(r.revenue_dollars.mean, 0) + " +-" + fmt(r.revenue_dollars.stddev, 0)});
      (greedy ? greedy_blocking : budgeted_blocking) += r.blocking.mean;
    }
  }
  table.print();

  const bool shape = greedy_blocking >= budgeted_blocking;
  std::cout << "\nPaper claim: without cost constraints blocking rises (greedy "
            << pct(greedy_blocking / 3.0) << " vs budgeted " << pct(budgeted_blocking / 3.0)
            << " mean blocking)   [" << check(shape) << "]\n";
  return shape ? 0 : 1;
}
