// E18 (extension): population-scale capacity planning. A heterogeneous
// population (cheap-mobile / standard-desktop / premium, each a Poisson
// arrival process with think/abandonment behaviour) drives the complete
// lifecycle — negotiate, confirm-within-choicePeriod, playout, mid-stream
// violation, adaptation, release — against farms of growing size, and a
// binary search finds the sustainable aggregate arrival rate (shed rate
// <= 5%) per farm. Self-checks (non-zero exit on failure):
//   - determinism: two same-seed runs at the sustainable point are
//     byte-identical (PopulationMetrics::signature());
//   - capacity monotonicity: sustainable sessions/s never decreases with
//     farm size;
//   - conservation: every load point of every sweep satisfies the
//     lifecycle partition laws, opened == released, and full drain;
//   - class differentiation: at 2x sustainable load with the preemption
//     policy on, the premium shed rate sits strictly below the best-effort
//     one, and two same-seed policy-enabled runs stay byte-identical.
#include <cstdint>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "document/corpus.hpp"
#include "policy/preemption.hpp"
#include "session/session.hpp"
#include "sim/population.hpp"

namespace qosnp {
namespace {

using bench::Table;
using bench::check;
using bench::fmt;
using bench::pct;

constexpr std::uint64_t kSeed = 2026;
constexpr double kDurationS = 80.0;
constexpr double kShedThreshold = 0.05;
constexpr int kClients = 3;  // one node per population class

/// The shared document set: one corpus generated on server-0, replicated
/// per farm size so every title is available on every server. A bigger farm
/// strictly dominates a smaller one (all its variants plus replicas, wider
/// backbone, more disks) — the basis of the monotonicity self-check.
std::vector<MultimediaDocument> base_corpus() {
  CorpusConfig corpus;
  corpus.seed = 99;
  corpus.num_documents = 12;
  corpus.min_duration_s = 30.0;
  corpus.max_duration_s = 120.0;
  corpus.servers = {"server-0"};
  corpus.replication_probability = 0.0;
  return generate_corpus(corpus);
}

/// One farm of `n` servers with the replicated corpus, plus the negotiation
/// stack over it.
struct FarmSystem {
  Catalog catalog;
  std::unique_ptr<TransportService> transport;
  ServerFarm farm;
  std::unique_ptr<QoSManager> manager;
  std::unique_ptr<SessionManager> sessions;
  std::unique_ptr<PolicyEngine> policy;
  ManagerPopulationBackend backend;
  std::vector<DocumentId> documents;

  explicit FarmSystem(int n, ClassHeadroom headroom = {})
      : transport(std::make_unique<TransportService>(Topology::dumbbell(
            kClients, n, /*access_bps=*/600'000'000,
            /*backbone_bps=*/static_cast<std::int64_t>(n) * 150'000'000))),
        backend(make_backend(n, headroom)) {
    transport->set_class_headroom(headroom);
    for (MultimediaDocument doc : base_corpus()) {
      for (int k = 1; k < n; ++k) {
        for (Monomedia& mono : doc.monomedia) {
          const std::size_t originals = mono.variants.size();
          for (std::size_t v = 0; v < originals; ++v) {
            Variant replica = mono.variants[v];
            replica.id += "@s" + std::to_string(k);
            replica.server = "server-" + std::to_string(k);
            mono.variants.push_back(std::move(replica));
          }
        }
      }
      const auto problems = catalog.add(std::move(doc));
      if (!problems.empty()) {
        std::cerr << "corpus document rejected: " << problems.front() << '\n';
        std::exit(1);
      }
    }
    documents = catalog.list();
  }

  PopulationMetrics run(const PopulationConfig& config) {
    return Population(config, backend, documents).run();
  }

  /// Route negotiations through a preemption/upgrade engine (classes win by
  /// rank under congestion; upgrades are scanned on the simulation clock).
  /// The premium population demands far more capacity per session than the
  /// cheap classes, so inverting the shed-rate ordering takes a generous
  /// victim budget on top of the admission headroom.
  void enable_policy() {
    PreemptionPolicy preemption;
    preemption.enabled = true;
    preemption.max_victims = 32;
    policy = std::make_unique<PolicyEngine>(*manager, *sessions, preemption);
    backend.set_policy(policy.get());
  }

  bool drained() const {
    std::int64_t reserved = 0;
    int slots = 0;
    for (const ServerId& id : farm.list()) {
      reserved += farm.find(id)->usage().reserved_bps;
      slots += farm.find(id)->usage().sessions;
    }
    return sessions->active_count() == 0 && reserved == 0 && slots == 0 &&
           transport->active_flows() == 0 && transport->total_reserved_bps() == 0;
  }

 private:
  ManagerPopulationBackend make_backend(int n, const ClassHeadroom& headroom) {
    for (int i = 0; i < n; ++i) {
      MediaServerConfig server;
      server.id = "server-" + std::to_string(i);
      server.node = "server-node-" + std::to_string(i);
      server.disk_bandwidth_bps = 150'000'000;
      server.max_sessions = 48;
      server.headroom = headroom;
      farm.add(std::move(server));
    }
    manager = std::make_unique<QoSManager>(catalog, farm, *transport);
    sessions = std::make_unique<SessionManager>(*manager);
    return ManagerPopulationBackend(*manager, *sessions);
  }
};

/// The standard population attached to this bench's client nodes, with every
/// arrival rate scaled by `multiplier` (base aggregate rate: 1.0 arrivals/s).
PopulationConfig population_at(double multiplier, double violation_rate_per_s = 0.0,
                               double diurnal_amplitude = 0.0) {
  PopulationConfig config;
  config.classes = standard_population();
  for (std::size_t i = 0; i < config.classes.size(); ++i) {
    ClientClass& cls = config.classes[i];
    cls.machine.node = "client-" + std::to_string(i);
    cls.arrival_rate_per_s *= multiplier;
    cls.violation_rate_per_s = violation_rate_per_s;
    cls.diurnal.amplitude = diurnal_amplitude;
    cls.diurnal.period_s = kDurationS;
    cls.diurnal.peak_at_s = kDurationS / 2.0;
  }
  config.duration_s = kDurationS;
  config.seed = kSeed;
  return config;
}

double base_aggregate_rate() {
  double total = 0.0;
  for (const ClientClass& cls : standard_population()) total += cls.arrival_rate_per_s;
  return total;
}

int failures = 0;

void expect(bool ok, const std::string& what) {
  if (!ok) {
    std::cerr << "SELF-CHECK FAILED: " << what << '\n';
    failures += 1;
  }
}

/// Run one load point on a fresh farm; conservation and drain are checked on
/// every point of every sweep.
PopulationMetrics run_point(int farm_size, const PopulationConfig& config,
                            const std::string& context) {
  FarmSystem system(farm_size);
  const PopulationMetrics metrics = system.run(config);
  expect(metrics.conserved(), context + ": lifecycle counts not conserved\n" +
                                  metrics.signature());
  expect(system.sessions->opened_total() == system.sessions->released_total(),
         context + ": opened != released");
  expect(system.drained(), context + ": reservations survived the run");
  return metrics;
}

struct CapacityPoint {
  int farm_size = 0;
  double sustainable_rate = 0.0;  ///< aggregate arrivals/s at shed <= 5%
  PopulationMetrics at_capacity;
};

CapacityPoint find_capacity(int farm_size) {
  CapacityPoint point;
  point.farm_size = farm_size;
  double lo = 0.0;   // known sustainable (no load sheds nothing)
  double hi = 16.0;  // far past any farm size swept here
  for (int iter = 0; iter < 10; ++iter) {
    const double mid = (lo + hi) / 2.0;
    const PopulationMetrics metrics =
        run_point(farm_size, population_at(mid),
                  "farm " + std::to_string(farm_size) + " x" + fmt(mid, 3));
    if (metrics.shed_rate() <= kShedThreshold) {
      lo = mid;
      point.at_capacity = metrics;
    } else {
      hi = mid;
    }
  }
  point.sustainable_rate = lo * base_aggregate_rate();
  return point;
}

}  // namespace
}  // namespace qosnp

int main() {
  using namespace qosnp;
  bench::print_title("E18: population-scale capacity planning");
  std::cout << "population: cheap-mobile 0.5/s + standard-desktop 0.35/s + premium 0.15/s\n"
            << "lifecycle: negotiate -> confirm/abandon/timeout -> playout -> adapt -> release\n"
            << "sustainable = max aggregate arrival rate with shed rate <= "
            << pct(kShedThreshold) << " over " << fmt(kDurationS, 0) << "s replicates (seed "
            << kSeed << ")\n";

  // --- Capacity sweep: sustainable sessions/s per farm size. ---------------
  bench::print_section("Capacity sweep (binary search, 10 iterations)");
  const std::vector<int> farm_sizes = {1, 2, 4};
  std::vector<CapacityPoint> capacity;
  Table capacity_table({"farm", "sustainable arrivals/s", "admitted", "shed", "abandoned",
                        "admission rate"});
  for (int n : farm_sizes) {
    CapacityPoint point = find_capacity(n);
    const ClassCounts t = point.at_capacity.totals();
    capacity_table.row({std::to_string(n) + " servers", fmt(point.sustainable_rate, 2),
                        std::to_string(t.admitted), std::to_string(t.shed),
                        std::to_string(t.abandoned), pct(point.at_capacity.admission_rate())});
    capacity.push_back(std::move(point));
  }
  capacity_table.print();

  for (std::size_t i = 1; i < capacity.size(); ++i) {
    expect(capacity[i].sustainable_rate >= capacity[i - 1].sustainable_rate,
           "sustainable rate decreased from farm " + std::to_string(capacity[i - 1].farm_size) +
               " to farm " + std::to_string(capacity[i].farm_size));
  }
  expect(capacity.front().sustainable_rate > 0.0, "smallest farm sustains no load at all");

  // --- Determinism: same seed, byte-identical outcomes. --------------------
  bench::print_section("Determinism self-check");
  const double probe = capacity.back().sustainable_rate / base_aggregate_rate();
  const std::string sig_a =
      run_point(farm_sizes.back(), population_at(probe), "determinism run A").signature();
  const std::string sig_b =
      run_point(farm_sizes.back(), population_at(probe), "determinism run B").signature();
  expect(sig_a == sig_b, "two same-seed runs diverged");
  std::cout << "  same-seed replicates byte-identical: " << check(sig_a == sig_b) << '\n';

  // --- Adaptation success vs load. -----------------------------------------
  bench::print_section("Adaptation success rate vs load (farm of 2, violations 0.05/s)");
  Table adapt_table({"load multiplier", "violations", "adaptations", "preempt-released",
                     "adaptation success", "shed rate"});
  const double sustainable_mult = capacity[1].sustainable_rate / base_aggregate_rate();
  for (double factor : {0.5, 1.0, 2.0, 4.0}) {
    const double mult = sustainable_mult * factor;
    const PopulationMetrics metrics =
        run_point(2, population_at(mult, /*violation_rate_per_s=*/0.05),
                  "adaptation sweep x" + fmt(factor, 1));
    const ClassCounts t = metrics.totals();
    adapt_table.row({fmt(factor, 1) + "x capacity", std::to_string(t.violations),
                     std::to_string(t.adaptations), std::to_string(t.preempt_released),
                     pct(metrics.adaptation_success_rate()), pct(metrics.shed_rate())});
  }
  adapt_table.print();

  // --- Mixed-class overload under the preemption policy. -------------------
  bench::print_section("Mixed-class overload (policy on, 2x sustainable, farm of 2)");
  {
    auto policy_run = [&](const std::string& context) {
      // Withhold 30% of every resource from best-effort and 15% from
      // standard: the premium population's sessions are the biggest, so
      // preemption alone cannot invert the shed ordering.
      ClassHeadroom headroom;
      headroom.fraction = {0.30, 0.15, 0.0};
      FarmSystem system(2, headroom);
      system.enable_policy();
      PopulationConfig config = population_at(sustainable_mult * 2.0);
      config.upgrade_scan_interval_s = 5.0;
      const PopulationMetrics metrics = system.run(config);
      expect(metrics.conserved(),
             context + ": lifecycle counts not conserved\n" + metrics.signature());
      expect(system.sessions->opened_total() == system.sessions->released_total(),
             context + ": opened != released");
      expect(system.drained(), context + ": reservations survived the run");
      return metrics;
    };
    const PopulationMetrics mixed = policy_run("mixed-class run A");

    Table class_table({"class", "arrivals", "admitted", "shed", "shed rate", "preempted",
                       "degraded", "upgrades"});
    std::vector<double> shed_rates(mixed.by_class.size(), 0.0);
    for (std::size_t i = 0; i < mixed.by_class.size(); ++i) {
      const ClassCounts& c = mixed.by_class[i];
      shed_rates[i] =
          c.arrivals == 0 ? 0.0 : static_cast<double>(c.shed) / static_cast<double>(c.arrivals);
      class_table.row({mixed.class_names[i], std::to_string(c.arrivals),
                       std::to_string(c.admitted), std::to_string(c.shed), pct(shed_rates[i]),
                       std::to_string(c.policy_preempted), std::to_string(c.policy_degraded),
                       std::to_string(c.upgrades)});
    }
    class_table.print();

    // Class index 0 is cheap-mobile (best_effort), index 2 is premium — the
    // policy's whole point is that the premium shed rate sits strictly below
    // the best-effort one under overload.
    expect(mixed.by_class.size() == 3, "expected the 3-class standard population");
    if (mixed.by_class.size() == 3) {
      expect(mixed.by_class[0].arrivals > 0 && mixed.by_class[2].arrivals > 0,
             "mixed-class run produced no arrivals in a compared class");
      expect(shed_rates[2] < shed_rates[0],
             "premium shed rate (" + pct(shed_rates[2]) +
                 ") not strictly below best-effort shed rate (" + pct(shed_rates[0]) + ")");
      const ClassCounts t = mixed.totals();
      expect(t.policy_preempted + t.policy_degraded > 0,
             "2x overload never exercised the preemption policy");
    }

    const PopulationMetrics mixed_b = policy_run("mixed-class run B");
    expect(mixed.signature() == mixed_b.signature(),
           "two same-seed policy-enabled runs diverged");
    std::cout << "  policy-enabled same-seed replicates byte-identical: "
              << check(mixed.signature() == mixed_b.signature()) << '\n';
  }

  // --- Diurnal load curve. -------------------------------------------------
  bench::print_section("Diurnal modulation (amplitude 0.8, peak mid-replicate)");
  {
    std::vector<std::uint64_t> quarters(4, 0);
    PopulationConfig config = population_at(sustainable_mult, 0.0, /*diurnal_amplitude=*/0.8);
    config.arrival_observer = [&](std::size_t, double t_s) {
      const auto q = static_cast<std::size_t>(t_s / (kDurationS / 4.0));
      quarters[std::min<std::size_t>(q, 3)] += 1;
    };
    FarmSystem system(2);
    const PopulationMetrics metrics = system.run(config);
    expect(metrics.conserved(), "diurnal run: lifecycle counts not conserved");
    expect(system.drained(), "diurnal run: reservations survived");
    Table diurnal({"quarter", "arrivals"});
    for (std::size_t q = 0; q < 4; ++q) {
      diurnal.row({"Q" + std::to_string(q + 1), std::to_string(quarters[q])});
    }
    diurnal.print();
    expect(quarters[1] + quarters[2] > quarters[0] + quarters[3],
           "diurnal peak did not concentrate arrivals");
  }

  if (failures == 0) {
    std::cout << "\nAll E18 self-checks passed.\n";
    return 0;
  }
  std::cerr << '\n' << failures << " E18 self-check(s) failed.\n";
  return 1;
}
