// E13 (extension) — Block-level playout validation of the Sec. 6 mapping.
// The negotiation reserves maxBitRate for guaranteed continuous streams;
// this bench shows the behavioural basis: at peak-rate reservation a VBR
// MPEG stream plays cleanly, at average-rate reservation it stalls, and the
// stalls break audio/video lip-sync (the condition the synchronisation
// component [Lam 94] and the adaptation procedure exist to handle).
#include "delivery/playout.hpp"
#include "document/corpus.hpp"
#include "qosmap/mapping.hpp"

#include "bench_util.hpp"

namespace {

using namespace qosnp;
using namespace qosnp::bench;

DeliveryConfig base_config(std::int64_t bps) {
  DeliveryConfig config;
  config.bottleneck_bps = bps;
  config.base_delay_ms = 20.0;
  config.jitter_ms = 5.0;
  config.prebuffer_s = 1.0;
  config.seed = 11;
  return config;
}

}  // namespace

int main() {
  print_title("E13 (extension): playout quality vs reservation rule (Sec. 6)");

  const double duration = 300.0;
  const Variant video = make_video_variant("v", VideoQoS{ColorDepth::kColor, 25, 640},
                                           CodingFormat::kMPEG1, duration, "s");
  const Variant audio = make_audio_variant("a", AudioQuality::kCD, CodingFormat::kMPEGAudio,
                                           duration, "s");
  const StreamRequirements vreq = map_variant(video, duration, TimeProfile{});
  const StreamRequirements areq = map_variant(audio, duration, TimeProfile{});

  print_section(
      "Video (MPEG-1, colour, 25 fps, 640 px) under different reservations\n"
      "(low-latency playout: 150 ms prebuffer / 150 ms client buffer)");
  Table table({"reserved rate", "kbit/s", "stalls", "stall time", "late blocks",
               "worst lateness"});
  bool peak_clean = false;
  bool avg_stalls = false;
  struct RateRow {
    const char* label;
    std::int64_t bps;
  };
  const RateRow rows[] = {
      {"maxBitRate (the Sec. 6 rule)", vreq.max_bit_rate_bps},
      {"1.2 x avgBitRate", vreq.avg_bit_rate_bps * 12 / 10},
      {"avgBitRate", vreq.avg_bit_rate_bps},
      {"0.9 x avgBitRate", vreq.avg_bit_rate_bps * 9 / 10},
  };
  for (const RateRow& row : rows) {
    DeliveryConfig low_latency = base_config(row.bps);
    low_latency.prebuffer_s = 0.15;
    low_latency.max_buffer_ahead_s = 0.15;
    const PlayoutReport report = simulate_playout(video, duration, low_latency);
    table.row({row.label, fmt(static_cast<double>(row.bps) / 1000.0, 0),
               std::to_string(report.stalls), fmt(report.total_stall_s, 2) + "s",
               std::to_string(report.late_blocks), fmt(report.max_lateness_s, 3) + "s"});
    if (row.bps == vreq.max_bit_rate_bps) peak_clean = report.clean();
    if (row.bps == vreq.avg_bit_rate_bps) avg_stalls |= !report.clean();
  }
  table.print();

  print_section("Prebuffer sweep at avgBitRate reservation");
  Table buffer_table({"prebuffer", "stalls", "stall time"});
  for (const double prebuffer : {0.2, 1.0, 4.0, 16.0}) {
    DeliveryConfig config = base_config(vreq.avg_bit_rate_bps);
    config.prebuffer_s = prebuffer;
    config.max_buffer_ahead_s = prebuffer;
    const PlayoutReport report = simulate_playout(video, duration, config);
    buffer_table.row({fmt(prebuffer, 1) + "s", std::to_string(report.stalls),
                      fmt(report.total_stall_s, 2) + "s"});
  }
  buffer_table.print();

  print_section("Audio/video synchronisation skew (lip-sync tolerance 80 ms)");
  const PlayoutReport audio_clean =
      simulate_playout(audio, duration, base_config(areq.max_bit_rate_bps));
  const PlayoutReport video_clean =
      simulate_playout(video, duration, base_config(vreq.max_bit_rate_bps));
  const PlayoutReport video_starved =
      simulate_playout(video, duration, base_config(vreq.avg_bit_rate_bps * 9 / 10));
  Table sync_table({"configuration", "max skew", "within lip-sync"});
  const double skew_clean = max_sync_skew(video_clean, audio_clean);
  const double skew_starved = max_sync_skew(video_starved, audio_clean);
  sync_table.row({"both at reserved (peak) rates", fmt(skew_clean * 1000.0, 1) + " ms",
                  skew_clean < kLipSyncSkewS ? "yes" : "NO"});
  sync_table.row({"video under-reserved (0.9 x avg)", fmt(skew_starved * 1000.0, 1) + " ms",
                  skew_starved < kLipSyncSkewS ? "yes" : "NO"});
  sync_table.print();

  const bool shape = peak_clean && avg_stalls && skew_clean < kLipSyncSkewS &&
                     skew_starved > kLipSyncSkewS;
  std::cout << "\nPeak-rate reservation plays cleanly even in low-latency mode; average-rate\n"
               "reservation needs seconds of client buffering (the prebuffer sweep) and\n"
               "collapses below the average, breaking lip-sync — the behavioural basis of\n"
               "the Sec. 6 maxBitRate rule   ["
            << check(shape) << "]\n";
  return shape ? 0 : 1;
}
