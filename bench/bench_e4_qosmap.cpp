// E4 — QoS mapping (paper Sec. 6). Prints, for a representative variant
// ladder, the system QoS parameters the mapping derives:
//   maxBitRate = (maximum block length) x (block rate)
//   avgBitRate = (average block length) x (block rate)
// and checks the [Ste 90] constants the paper quotes for video
// (jitter = 10 ms, loss rate = 0.003).
#include "document/corpus.hpp"
#include "qosmap/mapping.hpp"

#include "bench_util.hpp"

int main() {
  using namespace qosnp;
  using namespace qosnp::bench;

  print_title("E4: QoS mapping, user-level QoS -> system-level parameters (Sec. 6)");

  const double duration = 180.0;
  const TimeProfile time;  // 10 s delivery deadline for discrete media

  struct Row {
    const char* label;
    Variant variant;
  };
  const Row rows[] = {
      {"video MPEG-1 b&w 10fps 320px",
       make_video_variant("v1", VideoQoS{ColorDepth::kBlackWhite, 10, 320},
                          CodingFormat::kMPEG1, duration, "s")},
      {"video MPEG-1 grey 15fps 640px",
       make_video_variant("v2", VideoQoS{ColorDepth::kGray, 15, 640}, CodingFormat::kMPEG1,
                          duration, "s")},
      {"video MPEG-1 color 25fps 640px",
       make_video_variant("v3", VideoQoS{ColorDepth::kColor, 25, 640}, CodingFormat::kMPEG1,
                          duration, "s")},
      {"video MJPEG scolor 30fps 1280px",
       make_video_variant("v4", VideoQoS{ColorDepth::kSuperColor, 30, 1280},
                          CodingFormat::kMJPEG, duration, "s")},
      {"audio PCM telephone",
       make_audio_variant("a1", AudioQuality::kTelephone, CodingFormat::kPCM, duration, "s")},
      {"audio PCM CD",
       make_audio_variant("a2", AudioQuality::kCD, CodingFormat::kPCM, duration, "s")},
      {"audio MPEG CD",
       make_audio_variant("a3", AudioQuality::kCD, CodingFormat::kMPEGAudio, duration, "s")},
      {"text 8KB english",
       make_text_variant("t1", Language::kEnglish, CodingFormat::kPlainText, 8'000, "s")},
      {"image JPEG color 640px",
       make_image_variant("i1", ImageQoS{ColorDepth::kColor, 640}, CodingFormat::kJPEG, "s")},
  };

  Table table({"variant", "avg kbit/s", "max kbit/s", "jitter ms", "loss", "guarantee"});
  bool formula_ok = true;
  for (const Row& row : rows) {
    const StreamRequirements req = map_variant(row.variant, duration, time);
    const bool continuous = row.variant.blocks_per_second > 0.0;
    if (continuous) {
      formula_ok &= req.max_bit_rate_bps ==
                    static_cast<std::int64_t>(row.variant.max_block_bytes * 8 *
                                              row.variant.blocks_per_second);
      formula_ok &= req.avg_bit_rate_bps ==
                    static_cast<std::int64_t>(row.variant.avg_block_bytes * 8 *
                                              row.variant.blocks_per_second);
    }
    table.row({row.label, fmt(static_cast<double>(req.avg_bit_rate_bps) / 1000.0, 1),
               fmt(static_cast<double>(req.max_bit_rate_bps) / 1000.0, 1),
               fmt(req.jitter_ms, 0), fmt(req.loss_rate, 3),
               std::string(to_string(req.guarantee))});
  }
  table.print();

  const MediumTargets video = medium_targets(MediaKind::kVideo);
  const bool constants_ok = video.jitter_ms == 10.0 && video.loss_rate == 0.003;
  std::cout << "\n[Ste 90] video constants: jitter 10 ms, loss 0.003   ["
            << check(constants_ok) << "]\n";
  std::cout << "Bit-rate formula maxBitRate = maxBlockLen x rate       ["
            << check(formula_ok) << "]\n";
  return (constants_ok && formula_ok) ? 0 : 1;
}
