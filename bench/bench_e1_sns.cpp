// E1 — Static negotiation status (paper Sec. 5.2.1 worked example).
// Reproduces: "offer1: CONSTRAINT, offer2: CONSTRAINT, offer3: CONSTRAINT,
// and offer4: ACCEPTABLE."
#include "core/classify.hpp"
#include "core/paper_example.hpp"

#include "bench_util.hpp"

int main() {
  using namespace qosnp;
  using namespace qosnp::bench;

  print_title("E1: Static negotiation status (Sec. 5.2.1)");
  std::cout << "Request: (color, TV resolution, 25 frames/s) desired = worst acceptable,\n"
               "maximum cost $4.00\n";

  auto ex = paper::classification_example();
  const ImportanceProfile imp = paper::importance_setting(1);
  const char* expected[] = {"CONSTRAINT", "CONSTRAINT", "CONSTRAINT", "ACCEPTABLE"};

  Table table({"offer", "QoS", "cost", "paper SNS", "computed SNS", "verdict"});
  bool all_ok = true;
  for (std::size_t i = 0; i < ex.offers.offers.size(); ++i) {
    const SystemOffer& offer = ex.offers.offers[i];
    const Sns sns = compute_sns(offer, ex.profile.mm, imp);
    const bool ok = std::string(to_string(sns)) == expected[i];
    all_ok &= ok;
    table.row({paper::offer_name(offer), to_string(offer.components[0].variant->qos),
               offer.total_cost().to_string(), expected[i], std::string(to_string(sns)),
               check(ok)});
  }
  table.print();
  std::cout << (all_ok ? "\nE1 reproduced exactly.\n" : "\nE1 MISMATCH — see rows above.\n");
  return all_ok ? 0 : 1;
}
