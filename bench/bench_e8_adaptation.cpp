// E8 — Automatic adaptation (paper Sec. 4 step 6 / Sec. 8 claim that
// "automatic adaptation [is a] viable feature"). Injects congestion episodes
// and server failures of growing intensity and reports how often violated
// sessions are transparently transitioned to an alternate configuration
// versus aborted, plus the accumulated playout interruption. Ablations:
//   - adaptation disabled (every violation kills the session),
//   - make-before-break transition (vs the paper's literal stop-then-restart),
//   - exclude-all-tried offer ladder,
//   - dual-backbone topology (a standby route around congestion).
// Every scenario is averaged over several seeds.
#include "sim/experiment.hpp"
#include "sim/replicate.hpp"

#include "bench_util.hpp"

namespace {

using namespace qosnp;
using namespace qosnp::bench;

ExperimentConfig scenario(double congestion_rate, double severity) {
  ExperimentConfig config;
  config.corpus.num_documents = 40;
  config.corpus.seed = 21;
  // Replicate variants generously: adaptation around a failed server needs
  // an alternate copy to exist (the paper's prototype stored copies as
  // distinct variants for exactly this reason).
  config.corpus.replication_probability = 0.5;
  config.num_clients = 12;
  config.sim_duration_s = 2'000.0;
  config.arrival_rate_per_s = 0.25;
  config.backbone_bps = 100'000'000;
  config.congestion_rate_per_s = congestion_rate;
  config.congestion_severity = severity;
  config.congestion_duration_s = 60.0;
  config.server_failure_rate_per_s = congestion_rate / 5.0;
  config.server_repair_s = 120.0;
  config.seed = 29;
  return config;
}

constexpr int kReplications = 3;

/// Mean metrics over kReplications seeds (counts rounded for display).
SimMetrics mean_metrics(const ExperimentConfig& base) {
  SimMetrics sum;
  for (int r = 0; r < kReplications; ++r) {
    ExperimentConfig config = base;
    config.seed = base.seed + static_cast<std::uint64_t>(r);
    const SimMetrics m = run_experiment(config).metrics;
    sum.violations += m.violations;
    sum.adaptations += m.adaptations;
    sum.failed_adaptations += m.failed_adaptations;
    sum.total_interruption_s += m.total_interruption_s;
    sum.completed += m.completed;
    sum.aborted += m.aborted;
  }
  sum.violations /= kReplications;
  sum.adaptations /= kReplications;
  sum.failed_adaptations /= kReplications;
  sum.total_interruption_s /= kReplications;
  sum.completed /= kReplications;
  sum.aborted /= kReplications;
  return sum;
}

std::vector<std::string> result_row(const std::string& label, const SimMetrics& m) {
  return {label,
          std::to_string(m.violations),
          std::to_string(m.adaptations),
          std::to_string(m.failed_adaptations),
          pct(m.adaptation_success_rate()),
          fmt(m.total_interruption_s, 1) + "s",
          std::to_string(m.completed),
          std::to_string(m.aborted)};
}

}  // namespace

int main() {
  print_title("E8: Automatic adaptation under congestion and server failures");
  std::cout << "(means over " << kReplications << " seeds)\n";

  Table table({"scenario", "violations", "adapted", "failed", "success", "interruption",
               "completed", "aborted"});

  std::size_t adapted_total = 0;
  std::size_t medium_completed = 0;
  std::size_t disabled_completed = 0;
  for (const auto& [label, rate, severity] :
       {std::tuple{"mild    (0.01/s, 40% loss)", 0.01, 0.4},
        std::tuple{"medium  (0.03/s, 60% loss)", 0.03, 0.6},
        std::tuple{"severe  (0.08/s, 80% loss)", 0.08, 0.8}}) {
    const SimMetrics m = mean_metrics(scenario(rate, severity));
    table.row(result_row(label, m));
    adapted_total += m.adaptations;
    if (severity == 0.6) medium_completed = m.completed;
  }

  // Ablation 1: adaptation disabled at medium intensity.
  {
    ExperimentConfig config = scenario(0.03, 0.6);
    config.adaptation_enabled = false;
    const SimMetrics m = mean_metrics(config);
    table.row(result_row("medium, adaptation OFF", m));
    disabled_completed = m.completed;
  }
  // Ablation 2: make-before-break (seamless) transition — cannot adapt
  // *through* an oversubscribed link, only around it.
  {
    ExperimentConfig config = scenario(0.03, 0.6);
    config.adaptation.make_before_break = true;
    table.row(result_row("medium, make-before-break", mean_metrics(config)));
  }
  // Ablation 3: exclude every previously-tried offer.
  {
    ExperimentConfig config = scenario(0.03, 0.6);
    config.adaptation.exclude_all_tried = true;
    table.row(result_row("medium, exclude-all-tried", mean_metrics(config)));
  }
  // Ablation 4: a standby backbone path — adaptation (and fresh admissions)
  // can route *around* the congested primary backbone.
  {
    ExperimentConfig config = scenario(0.03, 0.6);
    config.dual_backbone = true;
    table.row(result_row("medium, dual backbone", mean_metrics(config)));
  }
  table.print();

  const bool viable = adapted_total > 0 && medium_completed > disabled_completed;
  std::cout << "\nPaper claim: automatic adaptation is a viable feature. At medium intensity\n"
               "adaptation completes "
            << medium_completed << " sessions vs " << disabled_completed
            << " with adaptation disabled   [" << check(viable) << "]\n";
  return viable ? 0 : 1;
}
