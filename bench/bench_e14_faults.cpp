// E14 — Failure model & retries (extension; paper Sec. 7 only sketches the
// FAILEDTRYLATER path). Runs the full news-on-demand workload with the
// fault-injection decorators of src/fault wrapping the server farm and the
// transport, and compares a retrying commitment (RetryPolicy{max_attempts=3})
// against the historical single-shot walk at increasing transient-fault
// rates. The claim under test: retries recover transiently refused offers
// before the walk falls to worse offers, so the service rate with retries
// is no worse at every fault rate and strictly better overall.
#include "sim/experiment.hpp"

#include "bench_util.hpp"

namespace {

using namespace qosnp;
using namespace qosnp::bench;

ExperimentConfig base_config(double fault_p, int max_attempts) {
  ExperimentConfig config;
  config.corpus.num_documents = 30;
  config.corpus.seed = 21;
  config.num_clients = 12;
  config.sim_duration_s = 1'200.0;
  config.arrival_rate_per_s = 0.3;
  config.backbone_bps = 100'000'000;
  config.server_disk_bps = 80'000'000;
  config.strategy = Strategy::kSmart;
  config.seed = 17;

  config.fault_injection = true;
  config.faults.seed = 97;
  config.faults.server_defaults.transient_failure_p = fault_p;
  config.faults.transport_defaults.transient_failure_p = fault_p / 2.0;

  config.retry.max_attempts = max_attempts;
  config.retry.base_backoff_ms = 5.0;
  config.retry.jitter = 0.1;
  return config;
}

}  // namespace

int main() {
  print_title("E14: Commitment retries vs transient faults (fault-injection layer)");
  std::cout << "(seeded FaultPlan; retry = RetryPolicy{max_attempts=3}, single = 1 attempt)\n";

  const double fault_rates[] = {0.0, 0.1, 0.2, 0.3};

  Table table({"fault p", "policy", "service", "satisfied", "blocked", "attempts", "retries",
               "transient"});
  double retry_service_sum = 0.0;
  double single_service_sum = 0.0;
  bool pointwise = true;
  for (const double fault_p : fault_rates) {
    double per_rate[2] = {0.0, 0.0};
    for (const int max_attempts : {3, 1}) {
      const ExperimentResult r = run_experiment(base_config(fault_p, max_attempts));
      const SimMetrics& m = r.metrics;
      table.row({fmt(fault_p, 2), max_attempts > 1 ? "retry" : "single", pct(m.service_rate()),
                 pct(m.satisfaction()), pct(m.blocking_probability()),
                 std::to_string(m.commit_attempts), std::to_string(m.commit_retries),
                 std::to_string(m.transient_failures)});
      per_rate[max_attempts > 1 ? 0 : 1] = m.service_rate();
      (max_attempts > 1 ? retry_service_sum : single_service_sum) += m.service_rate();
    }
    // Allow a one-percentage-point wobble pointwise (different walk order
    // shifts which offers collide with background load); the sum must win.
    pointwise = pointwise && per_rate[0] >= per_rate[1] - 0.01;
  }
  table.print();

  const bool shape = pointwise && retry_service_sum > single_service_sum;
  std::cout << "\nClaim: retrying transiently refused commitments raises availability\n"
               "under injected faults. Mean service rate (retry) "
            << pct(retry_service_sum / 4.0) << " vs (single) " << pct(single_service_sum / 4.0)
            << "   [" << check(shape) << "]\n";
  return shape ? 0 : 1;
}
