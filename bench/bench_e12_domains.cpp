// E12 (extension) — Hierarchical multi-domain negotiation [Haf 95b], cited
// by the paper as part of its negotiation framework. The end-to-end path
// crosses administrative domains, each quoting its own segment tariff; the
// root negotiation composes segment offers. This bench admits a batch of
// negotiated sessions over a diamond of domains (a cheap transit of finite
// capacity in parallel with an expensive one) and compares the cost-aware
// route policy against the tariff-blind fewest-domains policy: who admits
// more, who routes via the cheap transit, and what the carried traffic
// costs per second.
#include <memory>

#include "core/qos_manager.hpp"
#include "document/catalog.hpp"
#include "document/corpus.hpp"
#include "domain/multi_domain.hpp"
#include "server/media_server.hpp"
#include "sim/experiment.hpp"
#include "util/rng.hpp"

#include "bench_util.hpp"

namespace {

using namespace qosnp;
using namespace qosnp::bench;

CostTable flat_tariff(Money per_second) {
  return CostTable{{{1'000'000'000, per_second}}};
}

std::unique_ptr<MultiDomainTransport> make_world(MultiDomainTransport::RoutePolicy policy) {
  // The cheap path crosses *two* regional domains; the direct path is one
  // premium backbone domain — so the tariff-blind fewest-domains policy
  // always buys the premium route, while the cost-aware policy takes the
  // two-hop regional route while it has capacity.
  std::vector<DomainConfig> domains = {
      {"client-domain", 400'000'000, flat_tariff(Money::micros(200)), 1.0},
      {"regional-a", 120'000'000, flat_tariff(Money::micros(500)), 5.0},
      {"regional-b", 120'000'000, flat_tariff(Money::micros(500)), 5.0},
      {"premium-backbone", 400'000'000, flat_tariff(Money::micros(8'000)), 3.0},
      {"server-domain", 400'000'000, flat_tariff(Money::micros(200)), 1.0},
  };
  auto net = std::make_unique<MultiDomainTransport>(std::move(domains), policy);
  (void)net->add_peering("client-domain", "regional-a");
  (void)net->add_peering("regional-a", "regional-b");
  (void)net->add_peering("regional-b", "server-domain");
  (void)net->add_peering("client-domain", "premium-backbone");
  (void)net->add_peering("premium-backbone", "server-domain");
  for (int i = 0; i < 8; ++i) (void)net->attach("client-" + std::to_string(i), "client-domain");
  (void)net->attach("server-node-0", "server-domain");
  (void)net->attach("server-node-1", "server-domain");
  return net;
}

}  // namespace

int main() {
  print_title("E12 (extension): hierarchical multi-domain negotiation");

  CorpusConfig corpus;
  corpus.num_documents = 30;
  corpus.seed = 21;
  Catalog catalog;
  for (auto& doc : generate_corpus(corpus)) catalog.add(std::move(doc));
  const auto doc_ids = catalog.list();
  const auto profiles = standard_profile_mix();

  Table table({"route policy", "admitted", "blocked", "via cheap", "via pricey",
               "carried cost $/s"});
  double cheapest_cost = 0.0;
  double fewest_cost = 0.0;
  std::size_t cheapest_admitted = 0;
  std::size_t fewest_admitted = 0;
  for (const auto policy : {MultiDomainTransport::RoutePolicy::kCheapest,
                            MultiDomainTransport::RoutePolicy::kFewestDomains}) {
    auto net = make_world(policy);
    ServerFarm farm;
    for (int i = 0; i < 2; ++i) {
      MediaServerConfig s;
      s.id = corpus.servers[static_cast<std::size_t>(i)];
      s.node = "server-node-" + std::to_string(i);
      s.disk_bandwidth_bps = 300'000'000;
      s.max_sessions = 256;
      farm.add(std::move(s));
    }
    QoSManager manager(catalog, farm, *net);

    Rng rng(17);
    std::size_t admitted = 0;
    std::size_t blocked = 0;
    std::size_t via_cheap = 0;
    std::size_t via_pricey = 0;
    Money carried_per_second;
    std::vector<NegotiationResult> held;  // keep commitments alive
    for (int i = 0; i < 40; ++i) {
      ClientMachine client;
      client.name = "client-" + std::to_string(rng.below(8));
      client.node = client.name;
      client.decoders = {CodingFormat::kMPEG1,     CodingFormat::kMPEG2,
                         CodingFormat::kMJPEG,     CodingFormat::kPCM,
                         CodingFormat::kADPCM,     CodingFormat::kMPEGAudio,
                         CodingFormat::kPlainText, CodingFormat::kJPEG,
                         CodingFormat::kGIF};
      const UserProfile& profile = profiles[rng.below(profiles.size())];
      NegotiationResult outcome =
          manager.negotiate(make_negotiation_request(client, doc_ids[rng.below(doc_ids.size())], profile));
      if (!outcome.has_commitment()) {
        ++blocked;
        continue;
      }
      ++admitted;
      for (FlowId flow : outcome.commitment.flow_ids()) {
        const auto route = net->route_of(flow);
        for (const DomainId& d : route) {
          if (d == "regional-a") ++via_cheap;
          if (d == "premium-backbone") ++via_pricey;
        }
      }
      held.push_back(std::move(outcome));
    }
    // Price the carried traffic: flat per-stream tariff x flows per domain.
    const std::pair<std::string, Money> tariffs[] = {
        {"client-domain", Money::micros(200)},   {"regional-a", Money::micros(500)},
        {"regional-b", Money::micros(500)},      {"premium-backbone", Money::micros(8'000)},
        {"server-domain", Money::micros(200)},
    };
    for (const auto& [d, tariff] : tariffs) {
      carried_per_second += tariff * static_cast<std::int64_t>(net->usage(d).flow_count);
    }
    table.row({policy == MultiDomainTransport::RoutePolicy::kCheapest ? "cheapest"
                                                                      : "fewest-domains",
               std::to_string(admitted), std::to_string(blocked), std::to_string(via_cheap),
               std::to_string(via_pricey), carried_per_second.to_string()});
    if (policy == MultiDomainTransport::RoutePolicy::kCheapest) {
      cheapest_cost = carried_per_second.as_dollars();
      cheapest_admitted = admitted;
    } else {
      fewest_cost = carried_per_second.as_dollars();
      fewest_admitted = admitted;
    }
  }
  table.print();

  const bool shape = cheapest_cost <= fewest_cost && cheapest_admitted >= fewest_admitted;
  std::cout << "\nThe cost-aware hierarchical composition carries the same workload at\n"
               "lower transit cost ($"
            << fmt(cheapest_cost, 4) << "/s vs $" << fmt(fewest_cost, 4)
            << "/s) and admits at least as many sessions   [" << check(shape) << "]\n";
  return shape ? 0 : 1;
}
