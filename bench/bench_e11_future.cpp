// E11 (extension) — Negotiation with future reservations [Haf 96], which
// the paper's framework includes via its optimization scheme citations.
// Without advance booking, a request that cannot be committed now is a bare
// FAILEDTRYLATER; with the planner, the same request receives a counter-
// offer "the document can start at T" and a firm booking. This bench feeds
// one stream of requests (desired start = arrival time) through a
// constrained system and reports, for several booking horizons, how many
// requests are served immediately, deferred (and by how much), or refused.
#include "advance/planner.hpp"
#include "core/classify.hpp"
#include "core/enumerate.hpp"
#include "document/catalog.hpp"
#include "document/corpus.hpp"
#include "sim/experiment.hpp"
#include "util/rng.hpp"

#include <numeric>

#include "bench_util.hpp"

namespace {

using namespace qosnp;
using namespace qosnp::bench;

struct Request {
  double arrival_s;
  DocumentId document;
  const UserProfile* profile;
};

}  // namespace

int main() {
  print_title("E11 (extension): future reservations vs immediate-only admission");

  // Content and infrastructure.
  CorpusConfig corpus;
  corpus.num_documents = 30;
  corpus.seed = 21;
  Catalog catalog;
  for (auto& doc : generate_corpus(corpus)) catalog.add(std::move(doc));
  const auto doc_ids = catalog.list();

  Topology topology = Topology::dumbbell(4, 2, 30'000'000, 60'000'000);
  std::vector<MediaServerConfig> servers;
  for (int i = 0; i < 2; ++i) {
    MediaServerConfig s;
    s.id = corpus.servers[static_cast<std::size_t>(i)];
    s.node = "server-node-" + std::to_string(i);
    s.disk_bandwidth_bps = 50'000'000;
    s.max_sessions = 64;
    servers.push_back(std::move(s));
  }
  ClientMachine client;
  client.name = "client-0";
  client.node = "client-0";
  client.decoders = {CodingFormat::kMPEG1,     CodingFormat::kMPEG2, CodingFormat::kMJPEG,
                     CodingFormat::kPCM,       CodingFormat::kADPCM, CodingFormat::kMPEGAudio,
                     CodingFormat::kPlainText, CodingFormat::kJPEG,  CodingFormat::kGIF};

  const std::vector<UserProfile> profiles = standard_profile_mix();

  // One fixed request stream, replayed against every horizon setting.
  Rng rng(7);
  std::vector<Request> requests;
  double t = 0.0;
  while (t < 600.0) {
    t += rng.exponential(0.15);
    requests.push_back(Request{t, doc_ids[rng.below(doc_ids.size())],
                               &profiles[rng.below(profiles.size())]});
  }

  Table table({"booking horizon", "requests", "immediate", "deferred", "refused",
               "mean defer", "p95 defer"});
  double refused_at_zero = -1.0;
  double refused_at_max = -1.0;
  for (const double horizon : {0.0, 120.0, 600.0, 3'600.0}) {
    FutureReservationPlanner::Config config;
    config.max_start_delay_s = horizon;
    FutureReservationPlanner planner(topology, servers, config);

    std::size_t immediate = 0;
    std::size_t deferred = 0;
    std::size_t refused = 0;
    std::vector<double> defers;
    for (const Request& request : requests) {
      planner.trim(request.arrival_s);
      auto document = catalog.find(request.document);
      auto feasible = compatible_variants(document, client, request.profile->mm);
      if (!feasible.ok()) {
        ++refused;
        continue;
      }
      OfferList offers =
          enumerate_offers(feasible.value(), request.profile->mm, CostModel{});
      classify_offers(offers.offers, request.profile->mm, request.profile->importance);
      auto plan = planner.plan(client, offers, request.profile->mm, request.arrival_s);
      if (!plan.ok()) {
        ++refused;
        continue;
      }
      const double defer = plan.value().start_s - request.arrival_s;
      if (defer <= 1e-9) {
        ++immediate;
      } else {
        ++deferred;
        defers.push_back(defer);
      }
    }
    std::sort(defers.begin(), defers.end());
    const double mean_defer =
        defers.empty() ? 0.0
                       : std::accumulate(defers.begin(), defers.end(), 0.0) /
                             static_cast<double>(defers.size());
    const double p95 =
        defers.empty() ? 0.0 : defers[static_cast<std::size_t>(0.95 * (defers.size() - 1))];
    table.row({horizon == 0.0 ? "none (immediate only)" : fmt(horizon, 0) + "s",
               std::to_string(requests.size()), std::to_string(immediate),
               std::to_string(deferred), std::to_string(refused), fmt(mean_defer, 1) + "s",
               fmt(p95, 1) + "s"});
    if (horizon == 0.0) refused_at_zero = static_cast<double>(refused);
    if (horizon == 3'600.0) refused_at_max = static_cast<double>(refused);
  }
  table.print();

  const bool shape = refused_at_max < refused_at_zero;
  std::cout << "\nFuture reservations convert refusals into dated counter-offers\n"
               "(refused: "
            << refused_at_zero << " immediate-only -> " << refused_at_max
            << " with a 1h horizon)   [" << check(shape) << "]\n";
  return shape ? 0 : 1;
}
