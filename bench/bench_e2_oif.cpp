// E2 — Overall importance factor and offer classification under the three
// importance settings of paper Sec. 5.2.2. Reproduces the OIF values and the
// resulting orderings:
//   (1) OIF 10/7/12/7    -> offer4, offer3, offer1, offer2
//   (2) OIF 20/23/24/27  -> offer4, offer3, offer2, offer1
//   (3) OIF -10/-16/-12/-20 -> offer1, offer3, offer2, offer4
// Also prints the literal-SNS-rule ablation for setting (3), documenting the
// inconsistency in the paper's third example (see classify.hpp).
#include "core/classify.hpp"
#include "core/paper_example.hpp"

#include "bench_util.hpp"

namespace {

using namespace qosnp;
using namespace qosnp::bench;

std::string ordering(const std::vector<SystemOffer>& offers) {
  std::string out;
  for (std::size_t i = 0; i < offers.size(); ++i) {
    if (i) out += ", ";
    out += paper::offer_name(offers[i]);
  }
  return out;
}

bool run_setting(int which, const std::vector<double>& expected_oif,
                 const std::string& expected_order) {
  print_section("Importance setting (" + std::to_string(which) + ")");
  auto ex = paper::classification_example();
  ex.profile.importance = paper::importance_setting(which);

  Table table({"offer", "paper OIF", "computed OIF", "verdict"});
  bool ok = true;
  for (std::size_t i = 0; i < ex.offers.offers.size(); ++i) {
    const double oif = compute_oif(ex.offers.offers[i], ex.profile.importance);
    const bool row_ok = oif == expected_oif[i];
    ok &= row_ok;
    table.row({paper::offer_name(ex.offers.offers[i]), fmt(expected_oif[i], 0), fmt(oif, 0),
               check(row_ok)});
  }
  table.print();

  classify_offers(ex.offers.offers, ex.profile.mm, ex.profile.importance);
  const std::string got = ordering(ex.offers.offers);
  const bool order_ok = got == expected_order;
  ok &= order_ok;
  std::cout << "  paper ordering:    " << expected_order << "\n"
            << "  computed ordering: " << got << "  [" << check(order_ok) << "]\n";
  return ok;
}

}  // namespace

int main() {
  print_title("E2: Overall importance factor and classification (Sec. 5.2.2)");
  bool ok = true;
  ok &= run_setting(1, {10, 7, 12, 7}, "offer4, offer3, offer1, offer2");
  ok &= run_setting(2, {20, 23, 24, 27}, "offer4, offer3, offer2, offer1");
  ok &= run_setting(3, {-10, -16, -12, -20}, "offer1, offer3, offer2, offer4");

  print_section("Ablation: literal SNS-primary rule on setting (3)");
  auto ex = paper::classification_example();
  ex.profile.importance = paper::importance_setting(3);
  ClassificationPolicy plain;
  plain.sns_rule = ClassificationPolicy::SnsRule::kPlain;
  classify_offers(ex.offers.offers, ex.profile.mm, ex.profile.importance, plain);
  std::cout << "  literal rule ordering: " << ordering(ex.offers.offers)
            << "\n  (offer4 leads: the paper's own SNS-primary rule contradicts its third\n"
               "   example; the default importance-weighted policy reproduces the paper.)\n";

  std::cout << (ok ? "\nE2 reproduced exactly.\n" : "\nE2 MISMATCH — see rows above.\n");
  return ok ? 0 : 1;
}
