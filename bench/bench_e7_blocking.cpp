// E7 — The paper's headline system claim (Sec. 1/8): smart negotiation
// "increases the availability of the system and the user satisfaction"
// compared with the basic negotiation of existing QoS architectures.
// Sweeps the arrival rate and compares four strategies:
//   smart     — the paper's procedure (SNS+OIF classification, fallback)
//   basic     — static per-request component choice, no alternatives
//   cost-only — offers ordered by cost alone (Sec. 5's strawman)
//   qos-only  — offers ordered by QoS alone (Sec. 5's strawman)
// Reported: service rate (served at all), satisfaction (served with full
// requirements), blocking probability, revenue, mean link utilisation.
#include "sim/replicate.hpp"

#include "bench_util.hpp"

namespace {

using namespace qosnp;
using namespace qosnp::bench;

std::string pm(const ReplicatedStat& stat) {
  return pct(stat.mean) + " +-" + pct(stat.stddev);
}

}  // namespace

int main() {
  print_title("E7: Availability and satisfaction vs load, smart vs baselines");
  constexpr int kReplications = 5;
  std::cout << "(mean +- stddev over " << kReplications << " seeds)\n";

  const double loads[] = {0.05, 0.2, 0.5, 1.0};
  const Strategy strategies[] = {Strategy::kSmart, Strategy::kBasic, Strategy::kCostOnly,
                                 Strategy::kQoSOnly};

  Table table({"arrival/s", "strategy", "service", "satisfied", "blocked", "mean util"});
  double smart_service_sum = 0.0;
  double basic_service_sum = 0.0;
  for (const double load : loads) {
    for (const Strategy strategy : strategies) {
      ExperimentConfig config;
      config.corpus.num_documents = 40;
      config.corpus.seed = 21;
      config.num_clients = 12;
      config.sim_duration_s = 1'500.0;
      config.arrival_rate_per_s = load;
      config.backbone_bps = 80'000'000;
      config.server_disk_bps = 70'000'000;
      config.strategy = strategy;
      config.seed = 17;
      const ReplicatedResult r = replicate(config, kReplications);
      table.row({fmt(load, 2), std::string(to_string(strategy)), pm(r.service_rate),
                 pm(r.satisfaction), pm(r.blocking), pm(r.mean_utilization)});
      if (strategy == Strategy::kSmart) smart_service_sum += r.service_rate.mean;
      if (strategy == Strategy::kBasic) basic_service_sum += r.service_rate.mean;
    }
  }
  table.print();

  const bool shape = smart_service_sum > basic_service_sum;
  std::cout << "\nPaper claim: smart negotiation increases availability over basic\n"
               "negotiation. Mean service rate (smart) "
            << pct(smart_service_sum / 4.0) << " vs (basic) " << pct(basic_service_sum / 4.0)
            << "   [" << check(shape) << "]\n";
  return shape ? 0 : 1;
}
