// E5 — Cost computation (paper Sec. 7, formula (1)):
//   CostDoc = CostCop + sum_i (CostNet_i + CostSer_i),
//   Cost*_i = Cost*_{class(i)} x D_i.
// Prints the throughput-class cost tables and the per-stream decomposition
// of a typical news article, and verifies that the decomposition sums to
// the charged total. Also shows the scale check: a few-minute TV-quality
// article lands in the low single-digit dollars, matching the paper's
// running examples ($2.50-$6.00).
#include "cost/cost_model.hpp"
#include "document/corpus.hpp"

#include "bench_util.hpp"

int main() {
  using namespace qosnp;
  using namespace qosnp::bench;

  print_title("E5: Cost computation (Sec. 7, formula (1))");

  const CostModel model;
  print_section("Throughput-class cost tables ($/s)");
  Table classes({"class", "up to kbit/s", "network $/s", "server $/s"});
  for (std::size_t i = 0; i < model.network_table().size(); ++i) {
    classes.row({"C" + std::to_string(i),
                 fmt(static_cast<double>(model.network_table().at(i).upper_bps) / 1000.0, 0),
                 model.network_table().at(i).cost_per_second.to_string(),
                 model.server_table().at(i).cost_per_second.to_string()});
  }
  classes.print();

  print_section("Decomposition of one news-article delivery (3 min)");
  const double duration = 180.0;
  const Money copyright = Money::cents(50);
  struct Item {
    const char* label;
    Variant variant;
  };
  const Item items[] = {
      {"video color 25fps 640px (MPEG-1)",
       make_video_variant("v", VideoQoS{ColorDepth::kColor, 25, 640}, CodingFormat::kMPEG1,
                          duration, "s")},
      {"audio CD (MPEG-audio)",
       make_audio_variant("a", AudioQuality::kCD, CodingFormat::kMPEGAudio, duration, "s")},
      {"text 8KB", make_text_variant("t", Language::kEnglish, CodingFormat::kPlainText, 8'000,
                                     "s")},
  };
  std::vector<StreamRequirements> streams;
  for (const Item& item : items) streams.push_back(map_variant(item.variant, duration, TimeProfile{}));
  const CostBreakdown breakdown = model.document_cost(copyright, streams);

  Table table({"component", "charged kbit/s", "class", "CostNet_i", "CostSer_i"});
  Money sum = copyright;
  for (std::size_t i = 0; i < streams.size(); ++i) {
    const std::int64_t charged = CostModel::charged_bps(streams[i]);
    table.row({items[i].label, fmt(static_cast<double>(charged) / 1000.0, 1),
               "C" + std::to_string(model.network_table().classify(charged)),
               breakdown.streams[i].network.to_string(),
               breakdown.streams[i].server.to_string()});
    sum += breakdown.streams[i].network + breakdown.streams[i].server;
  }
  table.print();
  std::cout << "  CostCop = " << copyright.to_string() << '\n';
  std::cout << "  CostDoc = " << breakdown.total.to_string() << '\n';

  const bool sums = sum == breakdown.total;
  const bool scale =
      breakdown.total >= Money::cents(250) && breakdown.total <= Money::dollars(6);
  std::cout << "\nFormula (1) decomposition sums to total                [" << check(sums)
            << "]\n";
  std::cout << "Typical article cost in the paper's $2.50-$6 regime    [" << check(scale)
            << "] (" << breakdown.total.to_string() << ")\n";
  return (sums && scale) ? 0 : 1;
}
