#!/bin/sh
# Gate on deprecated API surface. Two kinds of checks:
#  - removed names (NegotiationOutcome / ServiceResponse): their deprecation
#    PR is over and the aliases are deleted; nothing may reintroduce a
#    reference.
#  - one-PR migration shims (ServiceRequest, the multi-argument
#    negotiate()/negotiate_document() overloads): they exist for exactly one
#    PR so downstreams can migrate, and only their definition sites may
#    mention them. Next PR deletes the shims and drops their allowlists.
# Run from anywhere; registered with ctest as check_no_deprecated.
set -eu

repo="$(cd "$(dirname "$0")/.." && pwd)"
status=0

# check <label> <pattern> [allowed-file ...]: flag every occurrence of
# <pattern> in compiled code outside the allowlisted files.
check() {
    label="$1"
    pattern="$2"
    shift 2
    hits="$(grep -rEn "$pattern" \
        "$repo/src" "$repo/tests" "$repo/bench" "$repo/examples" 2>/dev/null || true)"
    for allowed in "$@"; do
        hits="$(printf '%s\n' "$hits" | grep -v "$allowed" || true)"
    done
    if [ -n "$hits" ]; then
        echo "deprecated surface '$label' is still referenced outside its definition:" >&2
        echo "$hits" >&2
        status=1
    fi
}

# Removed aliases: no exemptions — they must not come back.
check "NegotiationOutcome" "NegotiationOutcome"
check "ServiceResponse" "ServiceResponse"

# One-PR shims: allowed only where they are defined (and converted).
check "ServiceRequest" "ServiceRequest" \
    "src/service/negotiation_service.hpp" \
    "src/service/negotiation_service.cpp"
# Legacy multi-argument negotiate()/negotiate_document() calls: anything
# passing 2+ comma-separated bare arguments. Migrated call sites pass a
# single make_negotiation_request(...) whose inner parentheses keep this
# pattern from matching.
check "negotiate(client, document, ...)" "\bnegotiate(_document)?\([^()]*,[^()]*," \
    "src/core/qos_manager.hpp" \
    "src/core/qos_manager.cpp"

if [ "$status" -eq 0 ]; then
    echo "ok: deprecated surface appears only at its definition sites"
fi
exit "$status"
