#!/bin/sh
# Gate on the deprecated NegotiationOutcome / ServiceResponse aliases: they
# exist for exactly one PR so downstreams can migrate, and nothing in this
# repo may keep using them. The only permitted occurrences are the alias
# definitions themselves (and this script). Run from anywhere; registered
# with ctest as check_no_deprecated.
set -eu

repo="$(cd "$(dirname "$0")/.." && pwd)"
status=0

check() {
    name="$1"
    # All compiled code; the two headers holding the alias definitions (and
    # the comment cross-referencing them) are the only exemption, and docs
    # may mention the aliases to describe the migration.
    hits="$(grep -rn "$name" \
        "$repo/src" "$repo/tests" "$repo/bench" "$repo/examples" 2>/dev/null \
        | grep -v "src/core/negotiation_result.hpp" \
        | grep -v "src/service/negotiation_service.hpp" || true)"
    if [ -n "$hits" ]; then
        echo "deprecated alias '$name' is still referenced outside its definition:" >&2
        echo "$hits" >&2
        status=1
    fi
}

check "NegotiationOutcome"
check "ServiceResponse"

if [ "$status" -eq 0 ]; then
    echo "ok: deprecated aliases appear only at their definition sites"
fi
exit "$status"
