#!/bin/sh
# Gate on deprecated API surface. All former migration shims are deleted:
#  - removed names (NegotiationOutcome / ServiceResponse / ServiceRequest /
#    negotiate_document and the multi-argument negotiate() overload): their
#    deprecation window is over; nothing may reintroduce a reference.
#  - no [[deprecated]] marker may appear anywhere in compiled code: a new
#    migration shim needs its own PR (with an allowlist added here), not a
#    silent reintroduction.
# Run from anywhere; registered with ctest as check_no_deprecated.
set -eu

repo="$(cd "$(dirname "$0")/.." && pwd)"
status=0

# check <label> <pattern> [allowed-file ...]: flag every occurrence of
# <pattern> in compiled code outside the allowlisted files.
check() {
    label="$1"
    pattern="$2"
    shift 2
    hits="$(grep -rEn "$pattern" \
        "$repo/src" "$repo/tests" "$repo/bench" "$repo/examples" 2>/dev/null || true)"
    for allowed in "$@"; do
        hits="$(printf '%s\n' "$hits" | grep -v "$allowed" || true)"
    done
    if [ -n "$hits" ]; then
        echo "removed surface '$label' is referenced:" >&2
        echo "$hits" >&2
        status=1
    fi
}

# Removed aliases and shims: no exemptions — they must not come back.
check "NegotiationOutcome" "NegotiationOutcome"
check "ServiceResponse" "ServiceResponse"
check "ServiceRequest" "ServiceRequest"
check "negotiate_document" "\bnegotiate_document\b"
# Legacy multi-argument negotiate() calls: anything passing 2+
# comma-separated bare arguments. Current call sites pass a single
# make_negotiation_request(...) / NegotiationRequest whose inner parentheses
# keep this pattern from matching.
check "negotiate(client, document, ...)" "\bnegotiate\([^()]*,[^()]*,"
# No live [[deprecated]] markers: deprecations are one-PR affairs that must
# arrive with their own allowlist entry in this script.
check "[[deprecated]] marker" "\[\[deprecated"

# check_new <label> <pattern> <scope...>: the softer gate for surfaces that
# stay usable in existing code but are closed to NEW code. Only the listed
# scopes (the post-NodeConfig additions) are swept.
check_new() {
    label="$1"
    pattern="$2"
    shift 2
    hits=""
    for scope in "$@"; do
        [ -e "$repo/$scope" ] || continue
        found="$(grep -rEn "$pattern" "$repo/$scope" 2>/dev/null || true)"
        if [ -n "$found" ]; then
            hits="$(printf '%s\n%s' "$hits" "$found")"
        fi
    done
    if [ -n "$hits" ]; then
        echo "new code must configure nodes through NodeConfig, not '$label':" >&2
        echo "$hits" >&2
        status=1
    fi
}

# The loose config structs (ServiceConfig / CachePolicy / WireServerConfig)
# remain the validated carriers underneath NodeConfig — existing call sites
# keep working — but code written since the builder landed must go through
# NodeConfig's per-field validation instead of naming them directly.
new_code_scopes="src/shard tests/shard_test.cpp tests/shard_concurrency_test.cpp \
    tests/node_config_test.cpp bench/bench_e20_shards.cpp"
for name in ServiceConfig CachePolicy WireServerConfig; do
    # shellcheck disable=SC2086
    check_new "$name" "\b$name\b" $new_code_scopes
done

# Coverage guard: the directories this gate sweeps must actually exist (a
# moved/renamed subsystem would otherwise silently fall out of coverage).
for dir in src/core src/service src/session src/policy src/sim src/obs src/wire src/netio src/shard tests bench; do
    if [ ! -d "$repo/$dir" ]; then
        echo "coverage guard: expected directory '$dir' is missing" >&2
        status=1
    fi
done

if [ "$status" -eq 0 ]; then
    echo "ok: no removed API surface or deprecation markers present"
fi
exit "$status"
